"""Equivalence, golden and edge-case tests of the shared sweep-evaluation kernel.

The kernel (:mod:`repro.systems.evaluation`) replaces four independent
per-point evaluation loops, so its contract is locked from three sides:

* **golden fixtures** -- ``tests/golden/golden_eval.json`` pins literal
  ``H(s)`` values (computed by the per-point reference loop) for a
  deterministic system zoo; every strategy must reproduce them to
  ``<= 1e-10`` relative error per point.  Regenerate after an *intentional*
  numerical change with::

      PYTHONPATH=src python tests/test_evaluation_kernel.py --regenerate

* **hypothesis properties** -- over randomly generated stable systems the
  batched ``solve`` strategy is *bitwise identical* to the reference loop,
  and the ``auto`` strategy (eigendecomposition fast path) agrees to
  ``<= 1e-10`` relative error per point;

* **edge cases** -- empty point sets, generator inputs, singular pencils
  taking the least-squares fallback, non-square systems, non-diagonalizable
  pencils rejecting the fast path, and plan-cache pickling.
"""

from __future__ import annotations

import json
import os
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.pdn import PdnConfiguration, power_distribution_network
from repro.metrics.errors import relative_error_per_frequency
from repro.systems import DescriptorSystem, StateSpace, random_stable_system
from repro.systems.evaluation import (
    FAST_PATH_MIN_POINTS,
    build_evaluation_plan,
    evaluate_cauchy,
    evaluate_descriptor,
    evaluate_pointwise,
)
from repro.vectorfitting.rational import PoleResidueModel

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "golden_eval.json")

#: The acceptance bound: every vectorized strategy matches the per-point
#: reference loop to this relative error per evaluation point.
EQUIVALENCE_RTOL = 1e-10

METHODS = ("solve", "auto", "pointwise")


# --------------------------------------------------------------------------- #
# deterministic system zoo
# --------------------------------------------------------------------------- #
def _zoo() -> dict[str, tuple[DescriptorSystem, np.ndarray]]:
    """Named deterministic systems with their evaluation points.

    Covers: a standard state-space model, a singular-``E`` descriptor
    (MNA-assembled circuit), and a non-square system -- each with points on
    and off the imaginary axis.
    """
    axis = 1j * 2.0 * np.pi * np.logspace(1.0, 5.0, 12)
    shifted = axis + np.linspace(10.0, 1e4, 12)
    random_sys = random_stable_system(order=24, n_ports=3, feedthrough=0.1, seed=7)
    pdn = power_distribution_network(
        PdnConfiguration(n_ports=2, grid_rows=3, grid_cols=3, n_decaps=2, n_bulk_caps=1)
    )
    pdn_axis = 1j * 2.0 * np.pi * np.logspace(6.0, 9.4, 12)
    non_square = random_stable_system(order=16, n_ports=4, feedthrough=0.1, seed=21
                                      ).subsystem(outputs=[0, 2])
    return {
        "random-statespace": (random_sys, np.concatenate([axis, shifted])),
        "pdn-descriptor": (pdn, pdn_axis),
        "non-square": (non_square, axis),
    }


def _per_point_relative(got: np.ndarray, want: np.ndarray) -> np.ndarray:
    k = want.shape[0]
    scale = np.maximum(np.linalg.norm(want.reshape(k, -1), axis=1), np.finfo(float).tiny)
    return np.linalg.norm((got - want).reshape(k, -1), axis=1) / scale


def regenerate() -> str:
    """Recompute the golden reference values with the per-point loop."""
    cases = []
    for name, (system, points) in _zoo().items():
        values = evaluate_pointwise(system.E, system.A, system.B, system.C,
                                    system.D, points)
        cases.append({
            "name": name,
            "points_real": points.real.tolist(),
            "points_imag": points.imag.tolist(),
            "values_real": values.real.tolist(),
            "values_imag": values.imag.tolist(),
        })
    document = {
        "description": "reference transfer-function values of the evaluation-kernel zoo",
        "equivalence_rtol": EQUIVALENCE_RTOL,
        "cases": cases,
    }
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return GOLDEN_PATH


@pytest.fixture(scope="module")
def golden():
    if not os.path.exists(GOLDEN_PATH):
        pytest.fail(f"golden fixture missing: {GOLDEN_PATH} "
                    "(run `python tests/test_evaluation_kernel.py --regenerate`)")
    with open(GOLDEN_PATH, encoding="utf-8") as handle:
        return json.load(handle)


class TestGoldenEquivalence:
    @pytest.mark.parametrize("method", METHODS)
    def test_every_strategy_reproduces_golden_values(self, golden, method):
        zoo = _zoo()
        assert {case["name"] for case in golden["cases"]} == set(zoo)
        for case in golden["cases"]:
            system, points = zoo[case["name"]]
            stored_points = (np.asarray(case["points_real"])
                             + 1j * np.asarray(case["points_imag"]))
            np.testing.assert_array_equal(stored_points, points,
                                          err_msg=f"{case['name']}: zoo drifted")
            want = (np.asarray(case["values_real"])
                    + 1j * np.asarray(case["values_imag"]))
            got = system.evaluate_many(points, method=method)
            rel = _per_point_relative(got, want)
            assert np.max(rel) <= golden["equivalence_rtol"], (
                f"{case['name']} via {method}: max per-point relative error "
                f"{np.max(rel):.2e} exceeds {golden['equivalence_rtol']:g}"
            )

    def test_solve_is_bitwise_identical_to_pointwise(self):
        for name, (system, points) in _zoo().items():
            ref = evaluate_pointwise(system.E, system.A, system.B, system.C,
                                     system.D, points)
            got = system.evaluate_many(points, method="solve")
            assert np.array_equal(got, ref), f"{name}: solve drifted from the loop"


# --------------------------------------------------------------------------- #
# hypothesis properties
# --------------------------------------------------------------------------- #
@settings(max_examples=20, deadline=None)
@given(order=st.integers(min_value=2, max_value=20),
       n_ports=st.integers(min_value=1, max_value=4),
       seed=st.integers(min_value=0, max_value=2**31 - 1),
       n_points=st.integers(min_value=1, max_value=24))
def test_vectorized_matches_loop_property(order, n_ports, seed, n_points):
    """solve == loop bitwise; auto (fast path) == loop to <= 1e-10 relative."""
    system = random_stable_system(order=order, n_ports=n_ports,
                                  feedthrough=0.05, seed=seed)
    points = 1j * 2.0 * np.pi * np.logspace(1.0, 5.0, n_points)
    ref = evaluate_pointwise(system.E, system.A, system.B, system.C,
                             system.D, points)
    assert np.array_equal(system.evaluate_many(points, method="solve"), ref)
    fast = system.evaluate_many(points, method="auto")
    assert np.max(_per_point_relative(fast, ref)) <= EQUIVALENCE_RTOL


@settings(max_examples=20, deadline=None)
@given(n_poles=st.integers(min_value=1, max_value=6),
       p=st.integers(min_value=1, max_value=3),
       m=st.integers(min_value=1, max_value=3),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_cauchy_kernel_matches_per_point_evaluation(n_poles, p, m, seed):
    """The vectorized Cauchy contraction equals scalar pole-residue sums."""
    rng = np.random.default_rng(seed)
    poles = -rng.uniform(0.1, 10.0, n_poles) + 1j * rng.uniform(-5.0, 5.0, n_poles)
    residues = rng.normal(size=(n_poles, p, m)) + 1j * rng.normal(size=(n_poles, p, m))
    d = rng.normal(size=(p, m))
    points = 1j * rng.uniform(0.1, 100.0, 9)
    batched = evaluate_cauchy(poles, residues, d, points)
    for i, s in enumerate(points):
        expected = np.tensordot(1.0 / (s - poles), residues, axes=(0, 0)) + d
        np.testing.assert_allclose(batched[i], expected, rtol=1e-12, atol=0.0)


# --------------------------------------------------------------------------- #
# edge cases (issue satellite: evaluate_many corner behaviour)
# --------------------------------------------------------------------------- #
class TestEvaluateManyEdgeCases:
    @pytest.mark.parametrize("method", METHODS)
    def test_empty_point_set(self, small_system, method):
        out = small_system.evaluate_many([], method=method)
        assert out.shape == (0, small_system.n_outputs, small_system.n_inputs)
        assert out.dtype == complex

    def test_empty_frequency_response(self, small_system):
        out = small_system.frequency_response([])
        assert out.shape == (0, small_system.n_outputs, small_system.n_inputs)

    def test_generator_input(self, small_system):
        points = [1j * 10.0, 1j * 100.0, 5.0 + 1j]
        from_list = small_system.evaluate_many(points)
        from_generator = small_system.evaluate_many(p for p in points)
        np.testing.assert_array_equal(from_list, from_generator)

    @pytest.mark.parametrize("method", METHODS)
    def test_singular_pencil_takes_lstsq_fallback(self, method):
        """Points where ``sE - A`` is exactly singular match the lstsq loop."""
        system = StateSpace(np.diag([1.0, -2.0]), np.eye(2), np.eye(2),
                            np.zeros((2, 2)))
        # s = 1 makes the pencil exactly singular; surround it with enough
        # regular points that the fast path is in play for "auto"
        points = np.concatenate([[1.0 + 0.0j], 1j * np.linspace(1.0, 9.0, 9)])
        ref = evaluate_pointwise(system.E, system.A, system.B, system.C,
                                 system.D, points)
        # the reference itself must have taken the least-squares branch
        lstsq = np.linalg.lstsq(1.0 * np.eye(2) - system.A,
                                system.B.astype(complex), rcond=None)[0]
        np.testing.assert_allclose(ref[0], system.C @ lstsq + system.D,
                                   rtol=1e-12, atol=1e-12)
        got = system.evaluate_many(points, method=method)
        assert np.all(np.isfinite(got))
        rel = _per_point_relative(got, ref)
        assert np.max(rel) <= EQUIVALENCE_RTOL

    @pytest.mark.parametrize("a", [1.0, 0.3, 1.7, 2.5, 3.9, 5.3, 7.7, 11.1])
    def test_singular_point_repaired_with_cached_plan(self, a):
        """Regression: a plan cached from a *regular* sweep must not return
        cancellation garbage when a later sweep hits a pencil eigenvalue.

        The weight denominator ``(s - sigma) lambda - 1`` usually rounds to
        ~1e-16 instead of exactly zero at the singular point, so an
        ``isfinite`` check alone would let ~1e15-magnitude values through;
        the near-singular mask must catch it.
        """
        system = StateSpace(np.diag([a, -2.0]), np.eye(2), np.eye(2),
                            np.zeros((2, 2)))
        regular = 1j * np.linspace(1.0, 9.0, 11) + 0.25  # plan built/verified here
        system.evaluate_many(regular)
        assert system._eval_plan is not None
        sweep = np.concatenate([[complex(a)], 1j * np.linspace(1.0, 9.0, 9)])
        got = system.evaluate_many(sweep)
        ref = evaluate_pointwise(system.E, system.A, system.B, system.C,
                                 system.D, sweep)
        assert np.all(np.isfinite(got))
        assert np.max(_per_point_relative(got, ref)) <= EQUIVALENCE_RTOL

    def test_out_of_band_sweep_reverifies_cached_plan(self, small_system):
        """A sweep far outside the verified band re-probes the cached plan."""
        system = small_system.copy()
        low_band = 1j * 2.0 * np.pi * np.logspace(1.0, 2.0, 12)
        system.evaluate_many(low_band)
        band_before = system._eval_plan_band
        assert band_before is not None
        high_band = 1j * 2.0 * np.pi * np.logspace(6.0, 8.0, 12)
        got = system.evaluate_many(high_band)
        ref = evaluate_pointwise(system.E, system.A, system.B, system.C,
                                 system.D, high_band)
        assert np.max(_per_point_relative(got, ref)) <= EQUIVALENCE_RTOL
        # either the plan re-verified (band extended) or it fell back to the
        # bitwise solve path -- both keep the result correct; the band only
        # grows when verification succeeded
        lo, hi = system._eval_plan_band
        assert lo <= band_before[0] and hi >= band_before[1]

    @pytest.mark.parametrize("method", METHODS)
    def test_non_square_system(self, method):
        base = random_stable_system(order=12, n_ports=4, feedthrough=0.1, seed=3)
        system = base.subsystem(outputs=[0, 1], inputs=[0, 1, 2, 3])
        assert system.shape == (2, 4)
        points = 1j * 2.0 * np.pi * np.logspace(1.0, 4.0, 10)
        got = system.evaluate_many(points, method=method)
        assert got.shape == (10, 2, 4)
        ref = evaluate_pointwise(system.E, system.A, system.B, system.C,
                                 system.D, points)
        assert np.max(_per_point_relative(got, ref)) <= EQUIVALENCE_RTOL

    def test_scalar_and_batch_evaluation_agree(self, small_system):
        s = 3.0 + 4.0j
        np.testing.assert_array_equal(
            small_system.evaluate_many([s])[0], small_system.transfer_function(s)
        )

    def test_diag_method_rejects_non_diagonalizable_pencil(self):
        # a Jordan block is defective: the eigendecomposition fast path must
        # refuse rather than silently return garbage
        a = np.array([[-1.0, 1.0], [0.0, -1.0]])
        system = StateSpace(a, np.eye(2), np.eye(2))
        points = 1j * np.linspace(1.0, 10.0, 12)
        with pytest.raises(np.linalg.LinAlgError):
            system.evaluate_many(points, method="diag")
        # auto falls back to the (bitwise-stable) batched solve
        ref = evaluate_pointwise(system.E, system.A, system.B, system.C,
                                 system.D, points)
        np.testing.assert_array_equal(system.evaluate_many(points), ref)

    def test_plan_is_cached_and_survives_pickle(self, small_system):
        points = 1j * 2.0 * np.pi * np.logspace(1.0, 5.0, FAST_PATH_MIN_POINTS + 4)
        system = small_system.copy()  # private plan cache
        first = system.evaluate_many(points)
        assert system._eval_plan is not None  # plan (or rejection) memoized
        second = system.evaluate_many(points)
        np.testing.assert_array_equal(first, second)
        clone = pickle.loads(pickle.dumps(system))
        np.testing.assert_allclose(clone.evaluate_many(points), first,
                                   rtol=1e-12, atol=0.0)

    def test_rejected_plan_sentinel_survives_pickle(self):
        a = np.array([[-1.0, 1.0], [0.0, -1.0]])
        system = StateSpace(a, np.eye(2), np.eye(2))
        points = 1j * np.linspace(1.0, 10.0, 12)
        ref = system.evaluate_many(points)  # caches the rejection sentinel
        clone = pickle.loads(pickle.dumps(system))
        np.testing.assert_array_equal(clone.evaluate_many(points), ref)


# --------------------------------------------------------------------------- #
# kernel-level API
# --------------------------------------------------------------------------- #
class TestEvaluateDescriptor:
    def test_unknown_method_raises(self, small_system):
        with pytest.raises(ValueError, match="method"):
            evaluate_descriptor(small_system.E, small_system.A, small_system.B,
                                small_system.C, small_system.D, [1j],
                                method="fancy")

    def test_plan_verification_rejects_bad_probes(self, small_system):
        # an absurdly tight guard rejects every plan -> None
        plan = build_evaluation_plan(
            small_system.E, small_system.A, small_system.B, small_system.C,
            small_system.D, 1j * np.logspace(1, 5, 10), guard_tolerance=0.0,
        )
        assert plan is None


# --------------------------------------------------------------------------- #
# consumers: pole-residue models and vectorized metrics
# --------------------------------------------------------------------------- #
class TestConsumers:
    def test_pole_residue_evaluate_many_matches_scalar(self):
        poles = np.array([-1.0 + 2.0j, -1.0 - 2.0j, -3.0])
        residues = np.stack([
            np.array([[1.0 + 1.0j, 0.5], [0.0, 2.0]]),
            np.array([[1.0 - 1.0j, 0.5], [0.0, 2.0]]),
            np.array([[0.3, 0.0], [0.1, 0.7]]),
        ])
        model = PoleResidueModel(poles, residues, d=np.ones((2, 2)))
        points = 1j * np.linspace(0.5, 20.0, 7)
        batched = model.evaluate_many(points)
        for i, s in enumerate(points):
            np.testing.assert_allclose(batched[i], model.transfer_function(s),
                                       rtol=1e-12, atol=0.0)
        np.testing.assert_array_equal(
            model.frequency_response([1.0, 2.0]),
            model.evaluate_many(1j * 2.0 * np.pi * np.array([1.0, 2.0])),
        )

    def test_relative_error_matches_per_sample_loop(self, rng):
        model = rng.normal(size=(9, 3, 3)) + 1j * rng.normal(size=(9, 3, 3))
        reference = model + 1e-3 * rng.normal(size=model.shape)
        reference[4] = 0.0  # zero-reference frequency: absolute error branch
        batched = relative_error_per_frequency(model, reference)
        for i in range(model.shape[0]):
            denom = np.linalg.norm(reference[i], 2)
            num = np.linalg.norm(model[i] - reference[i], 2)
            expected = num if denom == 0.0 else num / denom
            np.testing.assert_allclose(batched[i], expected, rtol=1e-12)

    def test_relative_error_empty_stack(self):
        out = relative_error_per_frequency(np.empty((0, 2, 2)), np.empty((0, 2, 2)))
        assert out.shape == (0,)

    def test_interpolation_residuals_accepts_scalar_only_models(self, small_system,
                                                                small_data):
        from repro.core.mfti import mfti

        result = mfti(small_data)
        tangential = result.tangential

        class ScalarOnly:
            def transfer_function(self, s):
                return result.system.transfer_function(s)

        batched = tangential.interpolation_residuals(result.system)
        scalar = tangential.interpolation_residuals(ScalarOnly())
        np.testing.assert_allclose(batched[0], scalar[0], rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(batched[1], scalar[1], rtol=1e-9, atol=1e-12)


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        print(f"golden fixture written to {regenerate()}")
    else:
        print(__doc__)
