"""The serving layer's contract: protocol, service, dispatcher, CLI.

Four layers of defence:

* **wire-format round-trips** -- datasets, jobs and records must survive the
  JSON protocol bitwise (fingerprint-verified), and every tamper path must
  fail loudly (:class:`ProtocolError` / ``ValueError``), never decode to a
  different fit;
* the **differential guarantee** -- a batch submitted over a real localhost
  socket must come back :func:`~repro.batch.results.comparable_json`-
  identical to a local single-process :meth:`BatchEngine.run` of the same
  jobs;
* **service semantics** -- N concurrent identical submissions trigger
  exactly one underlying fit (and N answers), nondeterministic jobs never
  coalesce, and a batch that would overrun the admission bound is rejected
  whole with :class:`Backpressure` while the server stays healthy;
* the **dispatcher** -- an injected shard failure is retried and the merged
  result is still bit-identical to the unsharded run; an exhausted retry
  budget raises :class:`DispatchError`.

The CLI consolidation rides along: the umbrella ``python -m repro shard``
and the deprecated ``python -m repro.batch.shard`` alias (with its warning)
are exercised as real subprocesses.
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import math
import sys
import threading
import time

import numpy as np
import pytest

from repro.batch.engine import BatchEngine
from repro.batch.jobs import FitJob, JobRecord
from repro.batch.results import comparable_json
from repro.batch.shard import cli_subprocess
from repro.batch.sharding import ShardPlan, job_fingerprint, plan_shards
from repro.cache import FitCache
from repro.core.options import (
    MftiOptions,
    VftiOptions,
    canonical_token,
    options_from_items,
    parse_canonical_token,
)
from repro.experiments.workloads import port_sweep_jobs
from repro.serve.app import Backpressure, FitService, ThreadedServer
from repro.serve.client import Client, ServeError
from repro.serve.dispatcher import (
    DispatchError,
    Launcher,
    SubprocessLauncher,
    dispatch_workload,
    runtime_weights,
)
from repro.serve.protocol import (
    ProtocolError,
    decode_dataset,
    decode_job,
    decode_record,
    encode_dataset,
    encode_job,
    encode_record,
    is_deduplicatable,
    request_key,
)

#: Scaled-down port sweep: 4 jobs, small orders -- fast enough that the
#: socket/dispatcher tests stay tier-1.  The kwargs use JSON-native lists so
#: the very same dict drives the in-process builders and the CLI/manifest
#: paths without tuple/list drift.
GRID_KWARGS = dict(port_counts=[2], block_sizes=[1, 2], order=8,
                   n_samples=10, n_validation=12)


@pytest.fixture(scope="module")
def grid_jobs():
    return port_sweep_jobs(**GRID_KWARGS)


@pytest.fixture(scope="module")
def reference_run(grid_jobs):
    """The local single-process run every served answer must match."""
    result = BatchEngine().run(grid_jobs)
    assert result.n_failed == 0, result.failures
    return result


# --------------------------------------------------------------------------- #
# canonical-token round-trip layer
# --------------------------------------------------------------------------- #
class TestCanonicalRoundTrip:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, -17, 3.5, float("nan"), float("inf"),
        complex(1.25, -2.5), "", "plain", "tricky,]:chars", "seq:[]",
        (), (1, 2.5, "x"), (1, (2, (3,))),
    ])
    def test_token_round_trip(self, value):
        decoded = parse_canonical_token(canonical_token(value))
        if isinstance(value, float) and math.isnan(value):
            assert math.isnan(decoded)
        else:
            assert decoded == value
            assert type(decoded) is type(value)

    @pytest.mark.parametrize("token", [
        "bool:maybe", "int:", "float:xyz", "complex:0x1p+0", "str:5:ab",
        "seq:[int:1", "int:1]", "none,extra", "wat:1",
    ])
    def test_malformed_tokens_rejected(self, token):
        with pytest.raises(ValueError):
            parse_canonical_token(token)

    def test_options_round_trip_all_types(self):
        options = MftiOptions(block_size=3, rank_method="tolerance",
                              rank_tolerance=2e-4, direction_seed=7)
        items = options.canonical_items()
        rebuilt = options_from_items("MftiOptions", items)
        assert rebuilt == options
        # JSON transports items as lists -- must decode identically
        json_items = json.loads(json.dumps([list(item) for item in items]))
        assert options_from_items("MftiOptions", json_items) == options

    def test_options_drift_guard(self):
        items = [list(item) for item in VftiOptions().canonical_items()]
        with pytest.raises(ValueError):
            options_from_items("NoSuchOptions", items)
        items[0][0] = "not_a_field"
        with pytest.raises(ValueError, match="no option field"):
            options_from_items("VftiOptions", items)


class TestEngineConfig:
    def test_round_trip(self, tmp_path):
        engine = BatchEngine(executor="thread", max_workers=3, chunk_size=2,
                             cache=FitCache.on_disk(tmp_path / "store"))
        config = engine.to_config()
        rebuilt = BatchEngine.from_config(config)
        assert rebuilt.to_config() == config
        assert (rebuilt.executor, rebuilt.max_workers, rebuilt.chunk_size) == \
               ("thread", 3, 2)
        assert rebuilt.cache.store.root == engine.cache.store.root

    def test_memory_cache_and_defaults(self):
        assert BatchEngine.from_config(None) == BatchEngine()
        rebuilt = BatchEngine.from_config({"memory_cache": True})
        assert rebuilt.cache is not None

    def test_rejects_unknown_and_conflicting_keys(self):
        with pytest.raises(ValueError, match="unknown engine config"):
            BatchEngine.from_config({"executor": "serial", "bogus": 1})
        with pytest.raises(ValueError, match="cache_dir and memory_cache"):
            BatchEngine.from_config({"cache_dir": "/tmp/x", "memory_cache": True})


# --------------------------------------------------------------------------- #
# the wire protocol
# --------------------------------------------------------------------------- #
class TestProtocol:
    def test_dataset_bitwise_round_trip(self, grid_jobs):
        data = grid_jobs[0].data
        spec = json.loads(json.dumps(encode_dataset(data)))
        rebuilt = decode_dataset(spec)
        assert np.array_equal(rebuilt.frequencies_hz, data.frequencies_hz)
        assert np.array_equal(rebuilt.samples, data.samples)
        assert rebuilt.samples.dtype == data.samples.dtype
        assert (rebuilt.kind, rebuilt.reference_impedance, rebuilt.label) == \
               (data.kind, data.reference_impedance, data.label)

    def test_dataset_tamper_detected(self, grid_jobs):
        spec = encode_dataset(grid_jobs[0].data)
        spec["reference_impedance"] = float(75.0).hex()
        with pytest.raises(ProtocolError, match="fingerprint"):
            decode_dataset(spec)

    def test_job_round_trip_preserves_fingerprint(self, grid_jobs):
        for job in grid_jobs:
            rebuilt = decode_job(json.loads(json.dumps(encode_job(job))))
            assert job_fingerprint(rebuilt) == job_fingerprint(job)
            assert rebuilt.tags == job.tags

    def test_job_options_tamper_detected(self, grid_jobs):
        job = grid_jobs[1]  # an mfti job with non-default options
        spec = encode_job(job)
        tampered = json.loads(json.dumps(spec))
        for item in tampered["options"]["items"]:
            if item[0] == "block_size":
                item[1] = canonical_token(999)
        with pytest.raises(ProtocolError, match="fingerprint"):
            decode_job(tampered)

    def test_record_round_trip_is_exact(self):
        record = JobRecord(
            index=3, label="x", method="mfti", tags={"a": 1}, status="ok",
            order=17, elapsed_seconds=0.125,
            error_vs_data=1.2345678901234567e-7,
            error_vs_reference=float("nan"), cache_status="miss",
        )
        rebuilt = decode_record(json.loads(json.dumps(encode_record(record))))
        assert rebuilt.error_vs_data == record.error_vs_data
        assert math.isnan(rebuilt.error_vs_reference)
        assert dataclasses.replace(rebuilt, error_vs_reference=0.0) == \
               dataclasses.replace(record, result=None, error_vs_reference=0.0)

    def test_request_key_ignores_cosmetics_but_not_content(self, grid_jobs):
        job = grid_jobs[0]
        relabelled = dataclasses.replace(job, label="other", tags={"new": "tag"})
        assert request_key(relabelled) == request_key(job)
        other_method = grid_jobs[1]
        assert request_key(other_method) != request_key(job)

    def test_nondeterministic_jobs_not_deduplicatable(self, grid_jobs):
        assert is_deduplicatable(grid_jobs[0])
        random_job = FitJob(grid_jobs[0].data, method="mfti",
                            options=MftiOptions(direction_kind="random"))
        assert not is_deduplicatable(random_job)
        seeded = FitJob(grid_jobs[0].data, method="mfti",
                        options=MftiOptions(direction_kind="random",
                                            direction_seed=11))
        assert is_deduplicatable(seeded)


# --------------------------------------------------------------------------- #
# weighted planning
# --------------------------------------------------------------------------- #
class TestWeightedPlanning:
    def test_unweighted_matches_hash_ordered_plan(self, grid_jobs):
        assert plan_shards(grid_jobs, 3) == ShardPlan.from_jobs(grid_jobs, 3)

    def test_weighted_plan_is_merge_compatible_and_balanced(self, grid_jobs):
        weights = {job.label: 1.0 for job in grid_jobs}
        weights[grid_jobs[0].label] = 100.0  # one dominating job
        plan = plan_shards(grid_jobs, 2, weights=weights)
        assert plan.fingerprint == ShardPlan.from_jobs(grid_jobs, 2).fingerprint
        covered = sorted(index for shard in range(2)
                         for index in plan.indices_for(shard))
        assert covered == list(range(len(grid_jobs)))
        # LPT must isolate the dominating job on its own shard
        heavy_shard = plan.assignments[0]
        assert plan.indices_for(heavy_shard) == (0,)

    def test_runtime_weights_reads_bench_export(self, tmp_path):
        bench = tmp_path / "BENCH_batch_engine.json"
        bench.write_text(json.dumps({
            "benchmark": "batch_engine",
            "jobs": [
                {"label": "a", "elapsed_seconds": 2.0},
                {"label": "a", "elapsed_seconds": 4.0},
                {"label": "b", "elapsed_seconds": 1.0},
                {"label": "broken", "elapsed_seconds": None},
            ],
        }))
        assert runtime_weights(bench) == {"a": 3.0, "b": 1.0}
        empty = tmp_path / "BENCH_empty.json"
        empty.write_text(json.dumps({"benchmark": "empty"}))
        assert runtime_weights(empty) == {}
        with pytest.raises(DispatchError):
            runtime_weights(tmp_path / "missing.json")


# --------------------------------------------------------------------------- #
# the service over a real socket
# --------------------------------------------------------------------------- #
class TestFitServer:
    def test_served_batch_matches_local_run(self, grid_jobs, reference_run):
        with ThreadedServer(FitService(BatchEngine(executor="thread",
                                                   max_workers=2))) as server:
            client = Client(server.host, server.port)
            assert client.healthz()["status"] == "ok"
            served = client.submit(grid_jobs)
            stats = client.stats()
        assert comparable_json(served) == comparable_json(reference_run)
        assert all(record.result is None for record in served.records)
        assert stats["counters"]["computed"] == len(grid_jobs)
        assert stats["queue_depth"] == 0

    def test_concurrent_identical_submissions_share_one_fit(self, grid_jobs):
        job = grid_jobs[0]
        with ThreadedServer(FitService(BatchEngine(executor="thread",
                                                   max_workers=4))) as server:
            client = Client(server.host, server.port)
            results: list = [None] * 3

            def submit_one(slot: int) -> None:
                results[slot] = client.submit([job, job, job])

            threads = [threading.Thread(target=submit_one, args=(slot,))
                       for slot in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            counters = client.stats()["counters"]
        # 3 clients x 3 identical jobs: every submission answered...
        for result in results:
            assert result is not None and result.n_jobs == 3
            assert [record.index for record in result.records] == [0, 1, 2]
            assert all(record.ok for record in result.records)
        # ...and at most a couple of underlying fits ran (exactly 1 unless a
        # batch arrived after an earlier one fully completed); never 9
        assert counters["submitted"] == 9
        assert counters["computed"] + counters["coalesced"] == 9
        assert counters["computed"] <= 3
        # within one batch dedupe is deterministic: >= 2 coalesced per batch
        assert counters["coalesced"] >= 6

    def test_dedupe_rewrites_labels_per_request(self, grid_jobs):
        job = grid_jobs[0]
        twin = dataclasses.replace(job, label="twin", tags={"who": "twin"})
        with ThreadedServer(FitService(BatchEngine())) as server:
            result = Client(server.host, server.port).submit([job, twin])
            counters = server.service.counters
        assert counters["computed"] == 1 and counters["coalesced"] == 1
        assert [record.label for record in result.records] == [job.label, "twin"]
        assert result.records[1].tags == {"who": "twin"}
        assert result.records[0].error_vs_data == result.records[1].error_vs_data

    def test_nondeterministic_jobs_never_coalesce(self, grid_jobs):
        job = FitJob(grid_jobs[0].data, method="mfti",
                     options=MftiOptions(direction_kind="random"))
        with ThreadedServer(FitService(BatchEngine())) as server:
            result = Client(server.host, server.port).submit([job, job])
            counters = server.service.counters
        assert counters["computed"] == 2 and counters["coalesced"] == 0
        assert result.n_jobs == 2

    def test_backpressure_rejects_whole_batch(self, grid_jobs):
        with ThreadedServer(FitService(BatchEngine(), max_pending=1)) as server:
            client = Client(server.host, server.port)
            with pytest.raises(Backpressure, match="admission queue full"):
                client.submit(grid_jobs[:3])
            stats = client.stats()
            assert stats["counters"]["rejected"] == 3
            assert stats["counters"]["computed"] == 0
            # the server stays healthy: an admissible batch still succeeds
            ok = client.submit([grid_jobs[0]])
        assert ok.n_jobs == 1 and ok.records[0].ok

    def test_malformed_submissions_rejected(self, grid_jobs):
        with ThreadedServer(FitService(BatchEngine())) as server:
            connection = http.client.HTTPConnection(server.host, server.port,
                                                    timeout=30)
            connection.request("POST", "/submit", body=b"not json",
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            assert response.status == 400
            response.read()
            connection.close()
            client = Client(server.host, server.port)
            with pytest.raises(ServeError, match="404"):
                client._request_json("GET", "/nonsense")
            # wrong protocol version is refused, not misinterpreted
            connection = http.client.HTTPConnection(server.host, server.port,
                                                    timeout=30)
            connection.request("POST", "/submit", body=json.dumps(
                {"protocol_version": 999, "jobs": [{}]}).encode())
            response = connection.getresponse()
            assert response.status == 400
            assert b"protocol" in response.read()
            connection.close()


# --------------------------------------------------------------------------- #
# the dispatcher
# --------------------------------------------------------------------------- #
class FlakyLauncher(SubprocessLauncher):
    """Kills the first attempt of shard 0; every other launch is real."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.injected = 0

    def launch(self, shard_index, manifest_path, result_path, *, timeout=None):
        if shard_index == 0 and self.injected == 0:
            self.injected += 1
            return "failed", "injected shard failure"
        return super().launch(shard_index, manifest_path, result_path,
                              timeout=timeout)


class AlwaysLostLauncher(Launcher):
    """Claims success but never writes a result (a vanished machine)."""

    def __init__(self):
        self.calls = 0

    def launch(self, shard_index, manifest_path, result_path, *, timeout=None):
        self.calls += 1
        return "ok", ""


class SleepyPoolLauncher(SubprocessLauncher):
    """Runner that forks a worker child and hangs -- a stuck process pool.

    Mimics a ``--executor process`` shard runner mid-fit: the direct child
    spawns a worker subprocess, records both PIDs, and sleeps forever.  Only
    the kill path of :meth:`SubprocessLauncher.launch` is under test, so the
    manifest/result arguments are never touched.
    """

    def __init__(self, pid_file):
        super().__init__()
        self.pid_file = str(pid_file)

    def _argv(self, manifest_path, result_path):
        script = (
            "import os, subprocess, sys, time\n"
            "worker = subprocess.Popen(\n"
            "    [sys.executable, '-c', 'import time; time.sleep(120)'])\n"
            f"with open({self.pid_file!r}, 'w') as handle:\n"
            "    handle.write(f'{os.getpid()} {worker.pid}')\n"
            "time.sleep(120)\n"
        )
        return [sys.executable, "-c", script]


def _process_running(pid: int) -> bool:
    """True while ``pid`` is alive and not a zombie awaiting reap."""
    try:
        with open(f"/proc/{pid}/stat", encoding="ascii") as handle:
            stat = handle.read()
    except OSError:
        return False
    # field 3 (after the parenthesised comm) is the state letter
    return stat.rpartition(")")[2].split()[0] != "Z"


class TestDispatcher:
    def test_retry_after_killed_shard_is_bit_identical(self, tmp_path,
                                                       reference_run):
        launcher = FlakyLauncher()
        merged = dispatch_workload(
            "port_sweep_jobs", 2, tmp_path,
            workload_kwargs=GRID_KWARGS, launcher=launcher,
            max_retries=1, backoff_seconds=0.01,
        )
        assert launcher.injected == 1
        assert comparable_json(merged) == comparable_json(reference_run)
        assert merged.executor == "sharded(2)"

    def test_exhausted_retry_budget_raises(self, tmp_path, grid_jobs):
        launcher = AlwaysLostLauncher()
        with pytest.raises(DispatchError, match="failed after 2 attempt"):
            dispatch_workload(
                "port_sweep_jobs", 1, tmp_path,
                workload_kwargs=GRID_KWARGS, launcher=launcher,
                max_retries=1, backoff_seconds=0.01,
            )
        assert launcher.calls == 2

    def test_launcher_stubs_fail_loudly(self):
        from repro.serve.dispatcher import SlurmLauncher, SshLauncher

        for stub in (SshLauncher(("host-a",)), SlurmLauncher()):
            with pytest.raises(NotImplementedError):
                stub.launch(0, "manifest.json", "result.npz")

    @pytest.mark.skipif(not sys.platform.startswith("linux"),
                        reason="process-group kill asserted via /proc")
    def test_timeout_kill_leaves_no_orphaned_workers(self, tmp_path):
        # regression: launch() used to kill only the direct child, so a
        # runner's --executor process worker pool survived a timeout-kill
        pid_file = tmp_path / "pids.txt"
        launcher = SleepyPoolLauncher(pid_file)
        started = time.monotonic()
        status, detail = launcher.launch(
            0, "unused-manifest", str(tmp_path / "unused.npz"), timeout=2.0)
        assert status == "timeout"
        assert "killed" in detail
        # a surviving worker would hold the runner's stdout/stderr pipes
        # open and stall the post-kill communicate() far past the timeout
        assert time.monotonic() - started < 30.0
        runner_pid, worker_pid = (int(p) for p in
                                  pid_file.read_text().split())
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and (
                _process_running(runner_pid) or _process_running(worker_pid)):
            time.sleep(0.05)
        assert not _process_running(runner_pid)
        assert not _process_running(worker_pid)


# --------------------------------------------------------------------------- #
# CLI consolidation
# --------------------------------------------------------------------------- #
class TestCli:
    def test_umbrella_shard_plan(self, tmp_path):
        completed = cli_subprocess(
            "shard", "plan", "--workload", "port_sweep_jobs",
            "--workload-args", json.dumps(GRID_KWARGS),
            "--shards", "2", "--out-dir", str(tmp_path),
            module="repro",
        )
        assert completed.returncode == 0, completed.stderr
        assert "deprecated" not in completed.stderr
        assert len(list(tmp_path.glob("*.manifest.json"))) == 2

    def test_deprecated_alias_still_works_with_warning(self, tmp_path):
        completed = cli_subprocess(
            "plan", "--workload", "port_sweep_jobs",
            "--workload-args", json.dumps(GRID_KWARGS),
            "--shards", "2", "--out-dir", str(tmp_path),
        )
        assert completed.returncode == 0, completed.stderr
        assert "deprecated" in completed.stderr
        assert "python -m repro shard" in completed.stderr
        assert len(list(tmp_path.glob("*.manifest.json"))) == 2
