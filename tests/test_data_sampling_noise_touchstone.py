"""Tests for sampling, noise injection and Touchstone I/O."""

import io

import numpy as np
import pytest

from repro.data.dataset import FrequencyData
from repro.data.frequency import linear_frequencies
from repro.data.noise import add_measurement_noise, snr_to_sigma
from repro.data.sampler import (
    sample_admittance,
    sample_impedance,
    sample_scattering,
    sample_system,
)
from repro.data.touchstone import read_touchstone, write_touchstone
from repro.systems.interconnect import z_to_s


class TestSampler:
    def test_sample_system_matches_direct_evaluation(self, small_system):
        freqs = np.array([1e2, 1e3])
        data = sample_system(small_system, freqs)
        direct = small_system.transfer_function(1j * 2 * np.pi * 1e3)
        assert np.allclose(data.samples[1], direct)
        assert data.kind == "H"

    def test_sample_scattering_passthrough(self, small_system):
        freqs = np.array([1e2, 1e3, 1e4])
        data = sample_scattering(small_system, freqs)
        assert data.kind == "S"
        assert data.n_samples == 3

    def test_sample_scattering_converts_impedance(self, tiny_pdn_system):
        freqs = np.array([1e7, 1e8])
        data = sample_scattering(tiny_pdn_system, freqs, system_kind="Z")
        expected = z_to_s(tiny_pdn_system.transfer_function(1j * 2 * np.pi * 1e8))
        assert np.allclose(data.samples[1], expected)

    def test_sample_impedance_and_admittance_kinds(self, tiny_pdn_system):
        freqs = np.array([1e7])
        assert sample_impedance(tiny_pdn_system, freqs).kind == "Z"
        assert sample_admittance(tiny_pdn_system, freqs).kind == "Y"

    def test_invalid_system_kind(self, small_system):
        with pytest.raises(ValueError):
            sample_scattering(small_system, [1e3], system_kind="Q")


class TestNoise:
    def test_relative_level_scales_noise(self, small_data):
        noisy = add_measurement_noise(small_data, relative_level=1e-2, seed=1)
        diff = noisy.samples - small_data.samples
        rms_signal = np.sqrt(np.mean(np.abs(small_data.samples) ** 2))
        rms_noise = np.sqrt(np.mean(np.abs(diff) ** 2))
        assert 0.5e-2 < rms_noise / rms_signal < 2e-2

    def test_snr_specification(self, small_data):
        noisy = add_measurement_noise(small_data, snr_db=40.0, seed=2)
        diff = noisy.samples - small_data.samples
        snr = 20 * np.log10(np.sqrt(np.mean(np.abs(small_data.samples) ** 2))
                            / np.sqrt(np.mean(np.abs(diff) ** 2)))
        assert 37.0 < snr < 43.0

    def test_zero_noise_returns_same_object(self, small_data):
        assert add_measurement_noise(small_data, relative_level=0.0) is small_data

    def test_reproducible_with_seed(self, small_data):
        a = add_measurement_noise(small_data, relative_level=1e-3, seed=5)
        b = add_measurement_noise(small_data, relative_level=1e-3, seed=5)
        assert np.allclose(a.samples, b.samples)

    def test_requires_exactly_one_spec(self, small_data):
        with pytest.raises(ValueError):
            add_measurement_noise(small_data)
        with pytest.raises(ValueError):
            add_measurement_noise(small_data, relative_level=1e-3, snr_db=40.0)

    def test_snr_to_sigma_value(self):
        samples = np.ones((2, 2, 2))
        assert snr_to_sigma(samples, 20.0) == pytest.approx(0.1)


class TestTouchstone:
    def _toy_data(self, n_ports, n_freq=5, seed=0):
        rng = np.random.default_rng(seed)
        freqs = linear_frequencies(1e8, 1e9, n_freq)
        samples = rng.normal(size=(n_freq, n_ports, n_ports)) * 0.3
        samples = samples + 1j * rng.normal(size=(n_freq, n_ports, n_ports)) * 0.3
        return FrequencyData(freqs, samples, kind="S", reference_impedance=50.0)

    @pytest.mark.parametrize("fmt", ["RI", "MA", "DB"])
    @pytest.mark.parametrize("n_ports", [1, 2, 3])
    def test_roundtrip(self, tmp_path, fmt, n_ports):
        data = self._toy_data(n_ports)
        path = tmp_path / f"network.s{n_ports}p"
        write_touchstone(data, path, fmt=fmt, freq_unit="MHZ")
        loaded = read_touchstone(path)
        assert loaded.kind == "S"
        assert loaded.n_ports == n_ports
        assert np.allclose(loaded.frequencies_hz, data.frequencies_hz)
        assert np.allclose(loaded.samples, data.samples, atol=1e-8)

    def test_roundtrip_stream_requires_port_count(self):
        data = self._toy_data(3)
        buffer = io.StringIO()
        write_touchstone(data, buffer, fmt="RI")
        buffer.seek(0)
        with pytest.raises(ValueError):
            read_touchstone(buffer)
        buffer.seek(0)
        loaded = read_touchstone(buffer, n_ports=3)
        assert np.allclose(loaded.samples, data.samples, atol=1e-10)

    def test_reference_impedance_and_comment(self, tmp_path):
        data = FrequencyData(np.array([1e9]), 0.1 * np.ones((1, 2, 2)),
                             kind="S", reference_impedance=75.0)
        path = tmp_path / "net.s2p"
        write_touchstone(data, path, comment="two-line\ncomment")
        text = path.read_text()
        assert "! two-line" in text
        assert "R 75" in text
        assert read_touchstone(path).reference_impedance == pytest.approx(75.0)

    def test_z_parameter_file(self, tmp_path):
        data = FrequencyData(np.array([1e6, 2e6]), np.stack([np.eye(2) * 10.0] * 2), kind="Z")
        path = tmp_path / "imp.s2p"
        write_touchstone(data, path)
        loaded = read_touchstone(path)
        assert loaded.kind == "Z"
        assert np.allclose(loaded.samples, data.samples, atol=1e-9)

    def test_invalid_format_rejected(self, tmp_path):
        data = self._toy_data(1)
        with pytest.raises(ValueError):
            write_touchstone(data, tmp_path / "x.s1p", fmt="XY")
        with pytest.raises(ValueError):
            write_touchstone(data, tmp_path / "x.s1p", freq_unit="THZ")

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "bad.s2p"
        path.write_text("# GHZ S RI R 50\n1.0 0.1 0.2 0.3\n")
        with pytest.raises(ValueError):
            read_touchstone(path)

    def test_comment_lines_ignored(self, tmp_path):
        path = tmp_path / "net.s1p"
        path.write_text("! header comment\n# HZ S RI R 50\n1e6 0.5 -0.25 ! trailing\n")
        loaded = read_touchstone(path)
        assert loaded.samples[0, 0, 0] == pytest.approx(0.5 - 0.25j)
