"""Tests for :mod:`repro.systems.interconnect` and :mod:`repro.systems.composition`."""

import numpy as np
import pytest

from repro.systems.composition import feedback, parallel, series
from repro.systems.interconnect import (
    s_to_y,
    s_to_z,
    scattering_from_admittance,
    scattering_from_impedance,
    y_to_s,
    y_to_z,
    z_to_s,
    z_to_y,
)
from repro.systems.random_systems import random_stable_system
from repro.systems.statespace import StateSpace


@pytest.fixture
def z_sample(rng):
    """A random passive-ish impedance matrix sample (diagonally dominant)."""
    z = rng.normal(size=(3, 3)) + 1j * rng.normal(size=(3, 3))
    return z + 10.0 * np.eye(3)


class TestPointwiseConversions:
    def test_z_s_roundtrip(self, z_sample):
        assert np.allclose(s_to_z(z_to_s(z_sample)), z_sample)

    def test_y_s_roundtrip(self, z_sample):
        y = np.linalg.inv(z_sample)
        assert np.allclose(s_to_y(y_to_s(y)), y)

    def test_z_y_roundtrip(self, z_sample):
        assert np.allclose(y_to_z(z_to_y(z_sample)), z_sample)

    def test_consistency_z_vs_y_path(self, z_sample):
        """Converting Z -> S directly equals converting Z -> Y -> S."""
        assert np.allclose(z_to_s(z_sample), y_to_s(z_to_y(z_sample)))

    def test_matched_load_gives_zero_reflection(self):
        z = 50.0 * np.eye(2)
        assert np.allclose(z_to_s(z, z0=50.0), 0.0)

    def test_open_circuit_reflection(self):
        # very large impedance -> reflection coefficient ~ +1
        s = z_to_s(np.array([[1e12]]), z0=50.0)
        assert s[0, 0] == pytest.approx(1.0, abs=1e-6)

    def test_short_circuit_reflection(self):
        s = z_to_s(np.array([[1e-9]]), z0=50.0)
        assert s[0, 0] == pytest.approx(-1.0, abs=1e-6)

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            z_to_s(np.ones((2, 3)))


class TestSystemLevelConversions:
    def test_impedance_system_matches_pointwise(self):
        z_system = random_stable_system(order=12, n_ports=3, feedthrough=None, seed=2)
        # shift D so Z + z0 I is well conditioned
        z_system = z_system.with_feedthrough(5.0 * np.eye(3))
        s_system = scattering_from_impedance(z_system, z0=50.0)
        for f in (1e2, 1e3, 1e4):
            s_point = 1j * 2 * np.pi * f
            expected = z_to_s(z_system.transfer_function(s_point), z0=50.0)
            assert np.allclose(s_system.transfer_function(s_point), expected, atol=1e-9)

    def test_admittance_system_matches_pointwise(self):
        y_system = random_stable_system(order=10, n_ports=2, feedthrough=None, seed=6)
        y_system = y_system.with_feedthrough(0.05 * np.eye(2))
        s_system = scattering_from_admittance(y_system, z0=50.0)
        for f in (1e2, 1e4):
            s_point = 1j * 2 * np.pi * f
            expected = y_to_s(y_system.transfer_function(s_point), z0=50.0)
            assert np.allclose(s_system.transfer_function(s_point), expected, atol=1e-9)

    def test_rectangular_system_rejected(self):
        sys_ = StateSpace(-np.eye(2), np.ones((2, 1)), np.ones((2, 2)))
        with pytest.raises(ValueError):
            scattering_from_impedance(sys_)


class TestComposition:
    def test_series_transfer_function(self):
        g1 = StateSpace([[-1.0]], [[1.0]], [[1.0]])
        g2 = StateSpace([[-2.0]], [[1.0]], [[2.0]])
        cascade = series(g1, g2)
        s = 1j * 0.7
        expected = g2.transfer_function(s) @ g1.transfer_function(s)
        assert np.allclose(cascade.transfer_function(s), expected)
        assert cascade.order == 2

    def test_parallel_transfer_function(self, small_system):
        doubled = parallel(small_system, small_system)
        s = 1j * 1e3
        assert np.allclose(doubled.transfer_function(s), 2.0 * small_system.transfer_function(s))

    def test_series_dimension_mismatch(self):
        g1 = StateSpace([[-1.0]], [[1.0]], np.ones((2, 1)))
        g2 = StateSpace([[-1.0]], [[1.0]], [[1.0]])
        with pytest.raises(ValueError):
            series(g1, g2)

    def test_parallel_dimension_mismatch(self):
        g1 = StateSpace([[-1.0]], [[1.0]], np.ones((2, 1)))
        g2 = StateSpace([[-1.0]], [[1.0]], [[1.0]])
        with pytest.raises(ValueError):
            parallel(g1, g2)

    def test_negative_feedback_dc_gain(self):
        # plant 10/(s+1), unit feedback -> dc gain 10/11
        plant = StateSpace([[-1.0]], [[1.0]], [[10.0]])
        controller = StateSpace([[-1e6]], [[0.0]], [[0.0]], [[1.0]])
        closed = feedback(plant, controller)
        assert closed.transfer_function(0.0)[0, 0] == pytest.approx(10.0 / 11.0, rel=1e-6)

    def test_feedback_formula_against_direct_computation(self):
        plant = random_stable_system(order=6, n_ports=2, seed=1, feedthrough=0.1)
        controller = random_stable_system(order=4, n_ports=2, seed=2, feedthrough=0.1)
        closed = feedback(plant, controller)
        s = 1j * 2 * np.pi * 50.0
        hp = plant.transfer_function(s)
        hc = controller.transfer_function(s)
        expected = np.linalg.solve(np.eye(2) + hp @ hc, hp)
        assert np.allclose(closed.transfer_function(s), expected, atol=1e-8)
