"""Tests for :mod:`repro.core.directions` and :mod:`repro.core.tangential`."""

import numpy as np
import pytest

from repro.core.directions import identity_directions, orthonormal_directions, vfti_directions
from repro.core.tangential import (
    LeftBlock,
    RightBlock,
    TangentialData,
    build_tangential_data,
)
from repro.data import sample_scattering
from repro.data.frequency import log_frequencies


class TestDirections:
    def test_identity_shapes_and_orthonormality(self):
        dirs = identity_directions(5, 3, 4)
        assert len(dirs) == 4
        for d in dirs:
            assert d.shape == (5, 3)
            assert np.allclose(d.T @ d, np.eye(3))

    def test_identity_stride_covers_all_ports(self):
        dirs = identity_directions(4, 2, 4)
        probed = set()
        for d in dirs:
            probed.update(np.flatnonzero(d.sum(axis=1)))
        assert probed == {0, 1, 2, 3}

    def test_identity_block_size_cap(self):
        with pytest.raises(ValueError):
            identity_directions(3, 4, 1)

    def test_orthonormal_shapes(self):
        dirs = orthonormal_directions(6, 2, 3, seed=1)
        assert len(dirs) == 3
        for d in dirs:
            assert d.shape == (6, 2)
            assert np.allclose(d.T @ d, np.eye(2), atol=1e-12)

    def test_orthonormal_reproducible(self):
        a = orthonormal_directions(4, 2, 2, seed=9)
        b = orthonormal_directions(4, 2, 2, seed=9)
        assert all(np.allclose(x, y) for x, y in zip(a, b))

    def test_vfti_directions_cycle(self):
        dirs = vfti_directions(3, 5)
        assert all(d.shape == (3, 1) for d in dirs)
        picked = [int(np.argmax(d)) for d in dirs]
        assert picked == [0, 1, 2, 0, 1]

    def test_vfti_directions_start_offset(self):
        dirs = vfti_directions(3, 2, start=2)
        assert int(np.argmax(dirs[0])) == 2


class TestBlocks:
    def test_right_block_validation(self):
        with pytest.raises(ValueError):
            RightBlock(1j, np.ones((2, 2)), np.ones((3, 1)))

    def test_left_block_validation(self):
        with pytest.raises(ValueError):
            LeftBlock(1j, np.ones((2, 3)), np.ones((1, 3)))

    def test_conjugate_blocks(self):
        block = RightBlock(2j, np.ones((2, 1)), np.array([[1 + 1j], [2 - 1j]]))
        conj = block.conjugate()
        assert conj.point == -2j
        assert np.allclose(conj.values, np.conj(block.values))


@pytest.fixture(scope="module")
def small_tangential(request):
    """Tangential data built from an 8-sample sweep of the shared small system."""
    from repro.systems.random_systems import random_stable_system

    system = random_stable_system(order=20, n_ports=4, feedthrough=0.1, seed=3)
    data = sample_scattering(system, log_frequencies(1e1, 1e5, 8))
    directions = identity_directions(4, 2, 4)
    tangential = build_tangential_data(
        data,
        right_directions=directions,
        left_directions=directions,
        include_conjugates=True,
    )
    return system, data, tangential


class TestTangentialData:
    def test_shapes(self, small_tangential):
        _, data, tangential = small_tangential
        assert tangential.n_inputs == 4
        assert tangential.n_outputs == 4
        # 4 right samples x block 2 x (original + conjugate) = 16 columns
        assert tangential.k_right == 16
        assert tangential.k_left == 16
        assert tangential.R.shape == (4, 16)
        assert tangential.W.shape == (4, 16)
        assert tangential.L.shape == (16, 4)
        assert tangential.V.shape == (16, 4)
        assert tangential.Lambda.shape == (16, 16)
        assert tangential.M.shape == (16, 16)
        assert tangential.n_sample_matrices == 8

    def test_points_come_in_conjugate_pairs(self, small_tangential):
        _, _, tangential = small_tangential
        lam = tangential.lambda_points
        # points repeat per block (t=2) and alternate +j / -j per pair
        assert np.allclose(lam[0], np.conj(lam[2]))
        assert np.allclose(lam[:2], lam[0])

    def test_values_satisfy_definition(self, small_tangential):
        system, data, tangential = small_tangential
        for block in tangential.right_blocks:
            expected = system.transfer_function(block.point) @ block.directions
            assert np.allclose(block.values, expected, atol=1e-10)
        for block in tangential.left_blocks:
            expected = block.directions @ system.transfer_function(block.point)
            assert np.allclose(block.values, expected, atol=1e-10)

    def test_interpolation_residuals_zero_for_true_system(self, small_tangential):
        system, _, tangential = small_tangential
        right, left = tangential.interpolation_residuals(system)
        assert np.max(right) < 1e-9
        assert np.max(left) < 1e-9

    def test_select_samples_keeps_pairs(self, small_tangential):
        _, _, tangential = small_tangential
        subset = tangential.select_samples([0, 2], [1])
        assert subset.n_right_samples == 2
        assert subset.n_left_samples == 1
        assert subset.conjugate_pairs
        assert subset.k_right == 8

    def test_select_samples_validation(self, small_tangential):
        _, _, tangential = small_tangential
        with pytest.raises(ValueError):
            tangential.select_samples([], [0])
        with pytest.raises(ValueError):
            tangential.select_samples([0], [99])

    def test_left_right_points_disjoint_enforced(self):
        right = [RightBlock(1j, np.eye(2), np.eye(2)), RightBlock(-1j, np.eye(2), np.eye(2))]
        left = [LeftBlock(1j, np.eye(2), np.eye(2)), LeftBlock(-1j, np.eye(2), np.eye(2))]
        with pytest.raises(ValueError, match="disjoint"):
            TangentialData(right, left, conjugate_pairs=True)

    def test_conjugate_pair_structure_enforced(self):
        right = [RightBlock(1j, np.eye(2), np.eye(2)), RightBlock(3j, np.eye(2), np.eye(2))]
        left = [LeftBlock(2j, np.eye(2), np.eye(2)), LeftBlock(-2j, np.eye(2), np.eye(2))]
        with pytest.raises(ValueError, match="conjugate"):
            TangentialData(right, left, conjugate_pairs=True)

    def test_builder_rejects_overlapping_indices(self, small_tangential):
        _, data, _ = small_tangential
        directions = identity_directions(4, 1, 2)
        with pytest.raises(ValueError):
            build_tangential_data(
                data,
                right_directions=directions,
                left_directions=directions,
                right_indices=[0, 1],
                left_indices=[1, 2],
            )

    def test_builder_direction_count_mismatch(self, small_tangential):
        _, data, _ = small_tangential
        with pytest.raises(ValueError):
            build_tangential_data(
                data,
                right_directions=identity_directions(4, 1, 2),
                left_directions=identity_directions(4, 1, 4),
            )

    def test_no_conjugates_option(self, small_tangential):
        _, data, _ = small_tangential
        directions = identity_directions(4, 2, 4)
        tangential = build_tangential_data(
            data,
            right_directions=directions,
            left_directions=directions,
            include_conjugates=False,
        )
        assert tangential.k_right == 8
        assert not tangential.conjugate_pairs
