"""Tests of the content-addressed fit cache (``repro.cache``).

Covers the subsystem bottom-up -- fingerprints, payload serialization, the
memory/disk stores (including LRU eviction and corruption safety) -- and then
the two integration contracts that make caching trustworthy:

* ``run_fit(..., cache=...)`` replays bitwise-identical results, and keyword
  shortcuts share cache entries with explicit options;
* a batch sweep run twice over one ``DiskStore`` reports 100 % hits, equal
  numerical payloads (via the engine's own ``numerical_differences``
  contract) and correct counters -- including the per-job error-capture
  path, which must never populate the cache.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.batch import BatchEngine, FitJob, numerical_differences, run_job
from repro.cache import (
    PAYLOAD_SCHEMA_VERSION,
    DiskStore,
    FitCache,
    MemoryStore,
    dataset_fingerprint,
    evaluation_key,
    fit_key,
    options_fingerprint,
    payload_to_result,
    result_to_payload,
)
from repro.core import run_fit
from repro.core.options import MftiOptions, RecursiveOptions, VftiOptions


@pytest.fixture(scope="module")
def job_grid(small_data, noisy_data, dense_data):
    """Deterministic mixed-method grid over two datasets (6 jobs)."""
    jobs = []
    for name, data in (("clean", small_data), ("noisy", noisy_data)):
        jobs.append(FitJob(data, method="vfti", options=VftiOptions(),
                           label=f"{name}/vfti", reference=dense_data))
        jobs.append(FitJob(data, method="mfti", options=MftiOptions(block_size=2),
                           label=f"{name}/mfti-t2", reference=dense_data))
        jobs.append(FitJob(
            data, method="mfti-recursive",
            options=RecursiveOptions(block_size=2, samples_per_iteration=2,
                                     rank_method="tolerance", rank_tolerance=1e-8),
            label=f"{name}/recursive", reference=dense_data))
    return jobs


# --------------------------------------------------------------------------- #
# fingerprints
# --------------------------------------------------------------------------- #
class TestFingerprints:
    def test_label_and_layout_invariance(self, small_data):
        relabelled = small_data.with_samples(small_data.samples, label="renamed")
        assert dataset_fingerprint(small_data) == dataset_fingerprint(relabelled)
        fortran = small_data.with_samples(np.asfortranarray(small_data.samples))
        assert dataset_fingerprint(small_data) == dataset_fingerprint(fortran)

    def test_sensitive_to_content_kind_and_impedance(self, small_data, noisy_data):
        assert dataset_fingerprint(small_data) != dataset_fingerprint(noisy_data)
        assert (dataset_fingerprint(small_data)
                != dataset_fingerprint(small_data.converted("Z")))
        assert dataset_fingerprint(small_data) != dataset_fingerprint(
            type(small_data)(small_data.frequencies_hz, small_data.samples,
                             kind=small_data.kind, reference_impedance=75.0))

    def test_subset_changes_fingerprint(self, small_data):
        assert (dataset_fingerprint(small_data)
                != dataset_fingerprint(small_data.subset(range(4))))

    def test_dataset_fingerprint_method_delegates(self, small_data):
        assert small_data.fingerprint() == dataset_fingerprint(small_data)

    def test_rejects_non_dataset(self):
        with pytest.raises(TypeError, match="FrequencyData"):
            dataset_fingerprint(np.zeros(3))

    def test_options_fingerprint_separates_methods_and_values(self):
        base = options_fingerprint("mfti", MftiOptions())
        assert base == options_fingerprint("mfti", MftiOptions())
        assert base != options_fingerprint("vfti", VftiOptions())
        assert base != options_fingerprint("mfti", MftiOptions(block_size=2))
        # None hashes like the method defaults (what the front-ends build)
        assert base == options_fingerprint("mfti", None)
        # subclasses with identical shared fields stay distinct
        assert (options_fingerprint("mfti", MftiOptions())
                != options_fingerprint("mfti-recursive", RecursiveOptions()))

    def test_live_generator_seed_rejected(self):
        options = MftiOptions(direction_kind="random",
                              direction_seed=np.random.default_rng(0))
        with pytest.raises(TypeError, match="canonical"):
            options_fingerprint("mfti", options)

    def test_fit_and_evaluation_keys_compose(self, small_data, dense_data):
        key = fit_key(small_data, "mfti", MftiOptions())
        assert key == fit_key(small_data, "mfti", MftiOptions())
        assert key != fit_key(dense_data, "mfti", MftiOptions())
        assert evaluation_key(key, small_data) != evaluation_key(key, dense_data)


# --------------------------------------------------------------------------- #
# payload serialization
# --------------------------------------------------------------------------- #
class TestSerialization:
    @pytest.mark.parametrize("method,options", [
        ("mfti", MftiOptions(block_size=2)),
        ("vfti", VftiOptions()),
        ("mfti-recursive", RecursiveOptions(block_size=2, samples_per_iteration=2,
                                            rank_method="tolerance",
                                            rank_tolerance=1e-8)),
    ])
    def test_roundtrip_is_bitwise(self, small_data, method, options):
        fresh = run_fit(small_data, method=method, options=options)
        arrays, meta = result_to_payload(fresh)
        json.dumps(meta)  # metadata must be JSON-serializable as-is
        restored = payload_to_result(arrays, meta, options=options)
        for attribute in ("E", "A", "B", "C", "D"):
            assert np.array_equal(getattr(fresh.system, attribute),
                                  getattr(restored.system, attribute))
        assert restored.method == fresh.method
        assert restored.order == fresh.order
        assert restored.n_samples_used == fresh.n_samples_used
        assert set(restored.singular_values) == set(fresh.singular_values)
        for name in fresh.singular_values:
            assert np.array_equal(restored.singular_values[name],
                                  fresh.singular_values[name])
        assert restored.realization.order == fresh.realization.order
        assert np.array_equal(restored.realization.singular_values,
                              fresh.realization.singular_values)
        # metadata round-trips with tuples/diagnostics intact; the heavy
        # intermediates are dropped by design
        assert restored.metadata == fresh.metadata
        assert restored.tangential is None and restored.pencil is None

    def test_schema_mismatch_rejected(self, small_data):
        arrays, meta = result_to_payload(run_fit(small_data, method="mfti"))
        meta = dict(meta, schema_version=999)
        with pytest.raises(ValueError, match="schema"):
            payload_to_result(arrays, meta)


# --------------------------------------------------------------------------- #
# stores
# --------------------------------------------------------------------------- #
class TestMemoryStore:
    def test_lru_eviction(self):
        store = MemoryStore(max_entries=2)
        payloads = {k: ({"M": np.eye(2)}, {"k": k}) for k in "abc"}
        assert store.save("a", payloads["a"]) == 0
        assert store.save("b", payloads["b"]) == 0
        store.load("a")  # refresh "a": "b" becomes the LRU entry
        assert store.save("c", payloads["c"]) == 1
        assert "b" not in store and "a" in store and "c" in store
        assert store.load("b") is None
        assert store.clear() == 2 and len(store) == 0

    def test_metadata_only_entries_exempt_from_bound(self):
        # evaluation memos are byte-sized and must never evict the fit
        # payloads they belong to
        store = MemoryStore(max_entries=1)
        assert store.save("fit", ({"M": np.eye(2)}, {})) == 0
        for index in range(5):
            assert store.save(f"eval-{index}", ({}, {"error": float(index)})) == 0
        assert "fit" in store and len(store) == 6
        assert store.save("fit-2", ({"M": np.eye(3)}, {})) == 1  # evicts "fit"
        assert "fit" not in store and "fit-2" in store

    def test_payloads_are_copied_and_frozen(self):
        # mutating the caller's array after save (or the loaded array) must
        # not corrupt the stored entry
        store = MemoryStore()
        source = np.eye(2)
        store.save("k", ({"M": source}, {}))
        source[0, 0] = 99.0
        arrays, _ = store.load("k")
        assert arrays["M"][0, 0] == 1.0
        with pytest.raises(ValueError, match="read-only"):
            arrays["M"][0, 0] = 42.0

    def test_invalid_bound(self):
        with pytest.raises(ValueError, match="max_entries"):
            MemoryStore(max_entries=0)


class TestDiskStore:
    def test_layout_and_roundtrip(self, tmp_path, small_data):
        store = DiskStore(tmp_path / "cache")
        key = fit_key(small_data, "mfti", MftiOptions())
        payload = result_to_payload(run_fit(small_data, method="mfti"))
        store.save(key, payload)
        assert key in store and store.keys() == [key]
        npz = tmp_path / "cache" / f"v{PAYLOAD_SCHEMA_VERSION}" / key[:2] / f"{key}.npz"
        assert npz.exists() and npz.with_suffix(".json").exists()
        arrays, meta = store.load(key)
        assert np.array_equal(arrays["A"], payload[0]["A"])
        assert meta == json.loads(json.dumps(payload[1]))

    def test_missing_and_corrupt_entries_load_as_none(self, tmp_path):
        store = DiskStore(tmp_path)
        assert store.load("0" * 64) is None
        key = "1" * 64
        store.save(key, ({"A": np.eye(2)}, {"schema_version": 1}))
        npz, sidecar = store._entry_paths(key)
        with open(npz, "wb") as handle:
            handle.write(b"not a zip archive")
        assert store.load(key) is None  # truncated npz
        with open(npz, "wb") as handle:
            handle.write(b"")
        with open(sidecar, "w", encoding="utf-8") as handle:
            handle.write("{broken json")
        assert store.load(key) is None  # invalid sidecar
        # a fresh save overwrites the corrupt entry
        store.save(key, ({"A": np.eye(2)}, {"schema_version": 1}))
        assert store.load(key) is not None
        assert store.clear() == 1

    def test_clear_empty(self, tmp_path):
        assert DiskStore(tmp_path / "nothing-here").clear() == 0

    def test_user_and_env_expansion(self, monkeypatch, tmp_path):
        # the README example points at "~/.cache/..."; a literal "~"
        # directory in the CWD would be a data-loss trap
        monkeypatch.setenv("HOME", str(tmp_path))
        assert DiskStore("~/fits").root == str(tmp_path / "fits")
        monkeypatch.setenv("REPRO_TEST_CACHE_HOME", str(tmp_path))
        assert DiskStore("$REPRO_TEST_CACHE_HOME/fits").root == str(tmp_path / "fits")


# --------------------------------------------------------------------------- #
# FitCache + run_fit integration
# --------------------------------------------------------------------------- #
class TestFitCache:
    def test_run_fit_replays_bitwise(self, small_data):
        cache = FitCache()
        first = run_fit(small_data, method="mfti", options=MftiOptions(block_size=2),
                        cache=cache)
        second = run_fit(small_data, method="mfti", options=MftiOptions(block_size=2),
                         cache=cache)
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert np.array_equal(first.system.A, second.system.A)
        assert second.metadata["options"] == MftiOptions(block_size=2)

    def test_kwarg_shortcut_shares_entry_with_options(self, small_data):
        cache = FitCache()
        run_fit(small_data, method="mfti", block_size=2, cache=cache)
        run_fit(small_data, method="mfti", options=MftiOptions(block_size=2),
                cache=cache)
        assert cache.stats().hits == 1

    def test_unseeded_random_directions_never_cached(self, small_data):
        cache = FitCache()
        options = MftiOptions(direction_kind="random")
        run_fit(small_data, method="mfti", options=options, cache=cache)
        run_fit(small_data, method="mfti", options=options, cache=cache)
        stats = cache.stats()
        assert stats.lookups == 0 and stats.skips == 2
        # a *seeded* random fit is deterministic and cacheable
        seeded = MftiOptions(direction_kind="random", direction_seed=7)
        run_fit(small_data, method="mfti", options=seeded, cache=cache)
        run_fit(small_data, method="mfti", options=seeded, cache=cache)
        assert cache.stats().hits == 1

    def test_env_kill_switch(self, small_data, monkeypatch):
        cache = FitCache()
        monkeypatch.setenv("REPRO_FIT_CACHE", "off")
        assert not cache.enabled
        run_fit(small_data, method="mfti", cache=cache)
        assert cache.stats().lookups == 0
        assert cache.stats().skips == 1  # the bypass is visible in the counters
        monkeypatch.delenv("REPRO_FIT_CACHE")
        assert cache.enabled
        run_fit(small_data, method="mfti", cache=cache)
        assert cache.stats().misses == 1

    def test_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FIT_CACHE", "0")
        assert FitCache.from_env() is None
        monkeypatch.delenv("REPRO_FIT_CACHE")
        assert isinstance(FitCache.from_env().store, MemoryStore)
        monkeypatch.setenv("REPRO_FIT_CACHE_DIR", str(tmp_path / "store"))
        cache = FitCache.from_env()
        assert isinstance(cache.store, DiskStore)
        assert cache.store.root == str(tmp_path / "store")

    def test_wrong_options_type_still_raises(self, small_data):
        with pytest.raises(TypeError, match="expects MftiOptions"):
            run_fit(small_data, method="mfti", options=VftiOptions(), cache=FitCache())

    def test_eviction_counter_surfaces(self, small_data, dense_data):
        cache = FitCache(MemoryStore(max_entries=1))
        run_fit(small_data, method="mfti", cache=cache)
        run_fit(dense_data, method="mfti", cache=cache)
        assert cache.stats().evictions >= 1

    def test_stats_helpers(self):
        stats = FitCache().stats()
        assert stats.lookups == 0 and np.isnan(stats.hit_rate)
        payload = stats.to_dict()
        assert payload["hits"] == 0 and payload["eval_misses"] == 0

    def test_cache_survives_pickle(self, small_data):
        import pickle

        cache = FitCache()
        run_fit(small_data, method="mfti", cache=cache)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.stats().misses == 1
        result = run_fit(small_data, method="mfti", cache=clone)
        assert clone.stats().hits == 1 and result.order > 0


# --------------------------------------------------------------------------- #
# batch cache-hit equivalence (the acceptance contract)
# --------------------------------------------------------------------------- #
class TestBatchCacheEquivalence:
    def test_second_disk_sweep_is_all_hits_and_identical(
        self, job_grid, fit_cache_dir
    ):
        cache = FitCache.on_disk(fit_cache_dir / "equivalence")
        engine = BatchEngine(cache=cache)
        cold = engine.run(job_grid)
        warm = engine.run(job_grid)

        assert cold.n_failed == warm.n_failed == 0
        assert [r.cache_status for r in cold.records] == ["miss"] * len(job_grid)
        assert [r.cache_status for r in warm.records] == ["hit"] * len(job_grid)
        assert (cold.n_cache_hits, cold.n_cache_misses) == (0, len(job_grid))
        assert (warm.n_cache_hits, warm.n_cache_misses) == (len(job_grid), 0)
        # the engine's bitwise-equivalence contract holds across cold/warm
        assert numerical_differences(cold, warm) == []
        stats = cache.stats()
        assert stats.hits == len(job_grid) and stats.misses == len(job_grid)
        assert stats.eval_hits == 2 * len(job_grid)  # data + reference per job

    def test_counters_in_table_and_json(self, job_grid, fit_cache_dir, tmp_path):
        cache = FitCache.on_disk(fit_cache_dir / "reporting")
        warm = None
        for _ in range(2):
            warm = BatchEngine(cache=cache).run(job_grid)
        table = warm.summary_table()
        assert f"cache hits={len(job_grid)}/{len(job_grid)}" in table
        assert "hit" in table
        payload = json.loads(warm.to_json())
        assert payload["schema_version"] == 5
        assert payload["n_cache_hits"] == len(job_grid)
        assert payload["n_cache_misses"] == 0
        assert all(job["cache"] == "hit" for job in payload["jobs"])
        path = warm.save_json(str(tmp_path / "warm.json"))
        with open(path, encoding="utf-8") as handle:
            assert json.load(handle)["n_cache_hits"] == len(job_grid)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_pooled_backends_share_disk_cache(self, job_grid, fit_cache_dir, executor):
        cache = FitCache.on_disk(fit_cache_dir / f"pooled-{executor}")
        serial_cold = BatchEngine(cache=cache).run(job_grid)
        pooled_warm = BatchEngine(executor=executor, max_workers=2,
                                  cache=cache).run(job_grid)
        assert pooled_warm.n_cache_hits == len(job_grid)
        assert numerical_differences(serial_cold, pooled_warm) == []

    def test_error_capture_path_with_cache(self, small_data, dense_data, fit_cache_dir):
        cache = FitCache.on_disk(fit_cache_dir / "failures")
        jobs = [
            FitJob(small_data, method="mfti", label="good", reference=dense_data),
            FitJob(small_data.subset([0]), method="mfti", label="poison"),
        ]
        for sweep in range(2):
            result = BatchEngine(cache=cache).run(jobs)
            assert result.n_ok == 1 and result.n_failed == 1
            failure = result.record_for("poison")
            assert failure.error_type == "ValueError"
            assert failure.cache_status is None  # failed before fit completed
            expected = "miss" if sweep == 0 else "hit"
            assert result.record_for("good").cache_status == expected
        # the failing fit never landed in the store: only the good fit + evals
        assert cache.stats().stores == 3

    def test_cache_off_leaves_records_unmarked(self, job_grid):
        result = BatchEngine().run(job_grid[:2])
        assert not result.used_cache
        assert all(r.cache_status is None for r in result.records)
        assert "cache" not in result.summary_table()

    def test_bounded_memory_cache_still_fully_warm(self, job_grid):
        # each job stores one fit + two evaluation memos; the memos must not
        # count toward the bound, or a "large enough" bound would still
        # never produce a warm sweep
        cache = FitCache(MemoryStore(max_entries=len(job_grid)))
        BatchEngine(cache=cache).run(job_grid)
        warm = BatchEngine(cache=cache).run(job_grid)
        assert warm.n_cache_hits == len(job_grid)
        assert cache.stats().evictions == 0

    def test_process_workers_get_empty_memory_store(self, job_grid):
        # a populated MemoryStore must not be pickled to process workers
        # (private copies cannot propagate hits back); DiskStore travels
        cache = FitCache()
        BatchEngine(cache=cache).run(job_grid[:2])  # warm the in-process store
        engine = BatchEngine(executor="process", max_workers=2, cache=cache)
        shipped = engine._worker_cache()
        assert shipped is not cache and len(shipped.store) == 0
        assert BatchEngine(cache=cache)._worker_cache() is cache
        disk_engine = BatchEngine(executor="process",
                                  cache=FitCache.on_disk("unused-dir"))
        assert disk_engine._worker_cache() is disk_engine.cache
        # end-to-end: the sweep still runs correctly, workers just start cold
        uncached = BatchEngine().run(job_grid[:2])
        pooled = engine.run(job_grid[:2])
        assert [r.cache_status for r in pooled.records] == ["miss", "miss"]
        assert numerical_differences(uncached, pooled) == []

    def test_run_job_statuses_directly(self, small_data, dense_data):
        cache = FitCache()
        record = run_job(0, FitJob(small_data, method="mfti"), cache)
        assert record.cache_status == "miss"
        record = run_job(1, FitJob(small_data, method="mfti"), cache)
        assert record.cache_status == "hit"
        assert record.to_dict()["cache"] == "hit"
        unseeded = FitJob(small_data, method="mfti",
                          options=MftiOptions(direction_kind="random"))
        assert run_job(2, unseeded, cache).cache_status == "skipped"

    def test_parallel_runs_use_distinct_dirs(self, fit_cache_dir):
        # the shared fixture must hand every consumer a path under pytest's
        # per-run numbered basetemp -- two concurrent pytest sessions
        # therefore write to different stores by construction
        assert os.path.basename(str(fit_cache_dir)).startswith("fit-cache")
        assert "pytest" in os.path.basename(os.path.dirname(str(fit_cache_dir)))
