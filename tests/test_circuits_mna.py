"""Tests for :mod:`repro.circuits.mna` -- the MNA assembly engine.

The checks compare assembled transfer functions against hand-computed
impedances/admittances of elementary circuits, which pins down the stamping
conventions (signs, branch currents, port semantics).
"""

import numpy as np
import pytest

from repro.circuits.mna import assemble_mna, netlist_to_descriptor
from repro.circuits.netlist import Netlist


def _z(system, f):
    return system.transfer_function(1j * 2 * np.pi * f)


class TestElementaryCircuits:
    def test_single_resistor_impedance(self):
        net = Netlist()
        net.add_resistor("a", "0", 75.0)
        net.add_port("a")
        sys_ = netlist_to_descriptor(net)
        assert _z(sys_, 1e3)[0, 0] == pytest.approx(75.0)

    def test_single_resistor_admittance_port(self):
        net = Netlist()
        net.add_resistor("a", "0", 50.0)
        net.add_probe_port("a")
        sys_ = netlist_to_descriptor(net)
        assert _z(sys_, 1e3)[0, 0] == pytest.approx(1.0 / 50.0)

    def test_rc_parallel_impedance(self):
        r, c = 100.0, 1e-9
        net = Netlist()
        net.add_resistor("a", "0", r)
        net.add_capacitor("a", "0", c)
        net.add_port("a")
        sys_ = netlist_to_descriptor(net)
        f = 1e6
        expected = 1.0 / (1.0 / r + 1j * 2 * np.pi * f * c)
        assert _z(sys_, f)[0, 0] == pytest.approx(expected, rel=1e-9)

    def test_rl_series_impedance(self):
        r, ind = 10.0, 1e-6
        net = Netlist()
        net.add_resistor("a", "b", r)
        net.add_inductor("b", "0", ind)
        net.add_port("a")
        sys_ = netlist_to_descriptor(net)
        f = 1e5
        expected = r + 1j * 2 * np.pi * f * ind
        assert _z(sys_, f)[0, 0] == pytest.approx(expected, rel=1e-9)

    def test_series_rlc_resonance(self):
        r, ind, c = 1.0, 1e-6, 1e-9
        net = Netlist()
        net.add_resistor("a", "b", r)
        net.add_inductor("b", "c", ind)
        net.add_capacitor("c", "0", c)
        net.add_port("a")
        sys_ = netlist_to_descriptor(net)
        f0 = 1.0 / (2 * np.pi * np.sqrt(ind * c))
        # at the series resonance the impedance is purely the resistance
        assert _z(sys_, f0)[0, 0] == pytest.approx(r, rel=1e-6)

    def test_two_port_voltage_divider(self):
        """Resistive divider: Z11 = R1 + R2, Z21 = Z12 = R2, Z22 = R2."""
        r1, r2 = 30.0, 70.0
        net = Netlist()
        net.add_resistor("in", "mid", r1)
        net.add_resistor("mid", "0", r2)
        net.add_port("in")
        net.add_port("mid")
        z = _z(netlist_to_descriptor(net), 1e3)
        assert z[0, 0] == pytest.approx(r1 + r2)
        assert z[0, 1] == pytest.approx(r2)
        assert z[1, 0] == pytest.approx(r2)
        assert z[1, 1] == pytest.approx(r2)

    def test_coupled_inductors_mutual_term(self):
        """Two coupled inductors to ground: Z12 = j*w*M."""
        ind, k = 1e-6, 0.5
        net = Netlist()
        net.add_inductor("a", "0", ind, name="La")
        net.add_inductor("b", "0", ind, name="Lb")
        net.add_mutual("La", "Lb", k)
        net.add_resistor("a", "0", 1e6)
        net.add_resistor("b", "0", 1e6)
        net.add_port("a")
        net.add_port("b")
        f = 1e5
        z = _z(netlist_to_descriptor(net), f)
        expected_mutual = 1j * 2 * np.pi * f * k * ind
        assert z[0, 1] == pytest.approx(expected_mutual, rel=1e-3)
        assert z[1, 0] == pytest.approx(expected_mutual, rel=1e-3)

    def test_reciprocity_of_passive_network(self, rng):
        """Passive RLC networks have symmetric impedance matrices."""
        net = Netlist()
        net.add_resistor("a", "b", 5.0)
        net.add_inductor("b", "c", 2e-9)
        net.add_capacitor("c", "0", 1e-12)
        net.add_capacitor("a", "0", 2e-12)
        net.add_resistor("c", "0", 1e3)
        net.add_port("a")
        net.add_port("c")
        z = _z(netlist_to_descriptor(net), 3e8)
        assert np.allclose(z, z.T, rtol=1e-9)


class TestMnaMetadata:
    def test_state_and_port_bookkeeping(self):
        net = Netlist()
        net.add_resistor("a", "b", 1.0)
        net.add_inductor("b", "0", 1e-9)
        net.add_capacitor("a", "0", 1e-12)
        net.add_port("a")
        net.add_probe_port("b")
        mna = assemble_mna(net)
        assert mna.node_names == ("a", "b")
        assert mna.inductor_names == ("L1",)
        assert mna.port_names == ("P1", "PP1")
        assert mna.port_kinds == ("Z", "Y")
        assert mna.parameter_kind == "hybrid"
        # states: 2 nodes + 1 inductor current + 1 voltage-port current
        assert mna.system.order == 4

    def test_parameter_kind_pure(self):
        net = Netlist()
        net.add_resistor("a", "0", 1.0)
        net.add_port("a")
        assert assemble_mna(net).parameter_kind == "Z"

    def test_invalid_netlist_raises(self):
        net = Netlist()
        net.add_resistor("a", "0", 1.0)
        with pytest.raises(ValueError):
            assemble_mna(net)

    def test_hermitian_positive_real_part(self):
        """A passive RLC network's impedance has positive-semidefinite Hermitian part."""
        net = Netlist()
        net.add_resistor("a", "b", 2.0)
        net.add_inductor("b", "0", 1e-9)
        net.add_capacitor("a", "0", 1e-12)
        net.add_resistor("a", "0", 100.0)
        net.add_port("a")
        sys_ = netlist_to_descriptor(net)
        for f in (1e6, 1e8, 1e9):
            z = _z(sys_, f)
            herm = 0.5 * (z + z.conj().T)
            assert np.min(np.linalg.eigvalsh(herm)) >= -1e-9
