"""Property-based tests (hypothesis) of the cache fingerprints.

The cache is only trustworthy if equal fits always collide onto one key and
unequal fits never do.  These properties are checked over generated datasets
and option configurations:

* **invariance** -- fingerprints ignore representation: labels, memory
  layout, copies, and lossless dtype round-trips of the numerical payload;
* **sensitivity** -- perturbing any single response entry, frequency, or the
  parameter kind / reference impedance changes the fingerprint;
* **options-ordering independence** -- the options fingerprint depends on
  the field *values*, never on construction order.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import dataset_fingerprint, options_fingerprint
from repro.core.options import MftiOptions, RecursiveOptions
from repro.data.dataset import FrequencyData

# keep generated datasets tiny: fingerprinting is shape-agnostic and the
# suite must stay fast
_DIMS = st.integers(min_value=1, max_value=3)
_COUNTS = st.integers(min_value=1, max_value=4)
_FINITE = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False,
                    allow_infinity=False, width=64)


@st.composite
def datasets(draw) -> FrequencyData:
    """A small random-but-valid FrequencyData."""
    k, p, m = draw(_COUNTS), draw(_DIMS), draw(_DIMS)
    # strictly increasing positive frequencies from positive gaps
    gaps = draw(st.lists(st.floats(min_value=0.5, max_value=10.0), min_size=k, max_size=k))
    freqs = np.cumsum(np.asarray(gaps, dtype=float)) + 1.0
    real = draw(st.lists(_FINITE, min_size=k * p * m, max_size=k * p * m))
    imag = draw(st.lists(_FINITE, min_size=k * p * m, max_size=k * p * m))
    samples = (np.asarray(real) + 1j * np.asarray(imag)).reshape(k, p, m)
    kind = draw(st.sampled_from(["S", "Z", "Y", "H"]))
    return FrequencyData(freqs, samples, kind=kind, label="generated")


@settings(max_examples=25, deadline=None)
@given(data=datasets())
def test_fingerprint_invariant_under_copy_and_dtype_roundtrip(data):
    """Copies, layout changes and lossless dtype round-trips hash alike."""
    baseline = dataset_fingerprint(data)
    copied = FrequencyData(
        np.array(data.frequencies_hz, copy=True),
        np.array(data.samples, copy=True, order="F"),
        kind=data.kind,
        reference_impedance=data.reference_impedance,
        label="a different label",
    )
    assert dataset_fingerprint(copied) == baseline
    # lossless dtype round-trip: complex128 -> (re, im) float64 -> complex128,
    # plus frequencies through a python-float list.  The components are
    # reassembled by field assignment: `re + 1j*im` is NOT lossless, because
    # IEEE addition collapses a negative-zero real part to +0.0
    rebuilt_samples = np.empty(data.samples.shape, dtype=complex)
    rebuilt_samples.real = data.samples.real.astype(np.float64)
    rebuilt_samples.imag = data.samples.imag.astype(np.float64)
    rebuilt = FrequencyData(
        [float(f) for f in data.frequencies_hz],
        rebuilt_samples,
        kind=data.kind,
        reference_impedance=data.reference_impedance,
    )
    assert dataset_fingerprint(rebuilt) == baseline
    # repeated hashing is stable (no hidden state)
    assert dataset_fingerprint(data) == baseline


@settings(max_examples=25, deadline=None)
@given(data=datasets(), st_data=st.data())
def test_fingerprint_sensitive_to_any_response_perturbation(data, st_data):
    """Flipping one bit-sized epsilon in one entry must change the hash."""
    baseline = dataset_fingerprint(data)
    k = st_data.draw(st.integers(0, data.n_samples - 1), label="freq index")
    i = st_data.draw(st.integers(0, data.n_outputs - 1), label="row")
    j = st_data.draw(st.integers(0, data.n_inputs - 1), label="col")
    samples = np.array(data.samples, copy=True)
    entry = samples[k, i, j]
    samples[k, i, j] = np.nextafter(entry.real, np.inf) + 1j * entry.imag
    perturbed = data.with_samples(samples)
    assert dataset_fingerprint(perturbed) != baseline


@settings(max_examples=25, deadline=None)
@given(data=datasets())
def test_fingerprint_sensitive_to_grid_and_convention(data):
    """Frequencies, kind and reference impedance are all part of the identity."""
    baseline = dataset_fingerprint(data)
    shifted = FrequencyData(data.frequencies_hz * 2.0, data.samples, kind=data.kind,
                            reference_impedance=data.reference_impedance)
    assert dataset_fingerprint(shifted) != baseline
    rescaled = FrequencyData(data.frequencies_hz, data.samples, kind=data.kind,
                             reference_impedance=data.reference_impedance + 1.0)
    assert dataset_fingerprint(rescaled) != baseline
    other_kind = next(k for k in ("S", "Z", "Y", "H") if k != data.kind)
    rekinded = FrequencyData(data.frequencies_hz, data.samples, kind=other_kind,
                             reference_impedance=data.reference_impedance)
    assert dataset_fingerprint(rekinded) != baseline


_MFTI_KWARGS = {
    "block_size": st.one_of(st.none(), st.integers(1, 4)),
    "direction_kind": st.sampled_from(["identity", "random"]),
    "direction_seed": st.integers(0, 2**31),
    "svd_mode": st.sampled_from(["two-sided", "pencil"]),
    "rank_method": st.sampled_from(["gap", "tolerance"]),
    "rank_tolerance": st.floats(min_value=1e-12, max_value=1e-3),
    "real_output": st.booleans(),
}


@st.composite
def mfti_kwargs(draw) -> dict:
    kwargs = {name: draw(strategy) for name, strategy in _MFTI_KWARGS.items()}
    if kwargs["real_output"] is False:
        kwargs["include_conjugates"] = draw(st.booleans())
    return kwargs


@settings(max_examples=50, deadline=None)
@given(kwargs=mfti_kwargs(), st_data=st.data())
def test_options_fingerprint_independent_of_construction_order(kwargs, st_data):
    """Passing the same values in any keyword order yields one fingerprint."""
    baseline = options_fingerprint("mfti", MftiOptions(**kwargs))
    order = st_data.draw(st.permutations(sorted(kwargs)), label="kwarg order")
    reordered = MftiOptions(**{name: kwargs[name] for name in order})
    assert options_fingerprint("mfti", reordered) == baseline


@settings(max_examples=50, deadline=None)
@given(kwargs=mfti_kwargs(), st_data=st.data())
def test_options_fingerprint_sensitive_to_any_field_change(kwargs, st_data):
    """Changing any single option value must change the fingerprint."""
    baseline = options_fingerprint("mfti", MftiOptions(**kwargs))
    mutable = dict(kwargs)
    field = st_data.draw(st.sampled_from(sorted(_MFTI_KWARGS)), label="field")
    replacement = st_data.draw(
        _MFTI_KWARGS[field].filter(lambda value: value != kwargs[field]),
        label="replacement",
    )
    mutable[field] = replacement
    if field == "real_output" and replacement:
        mutable.pop("include_conjugates", None)  # real output needs conjugates
    changed = options_fingerprint("mfti", MftiOptions(**mutable))
    assert changed != baseline


@settings(max_examples=20, deadline=None)
@given(kwargs=mfti_kwargs())
def test_subclass_options_never_alias_parent(kwargs):
    """Recursive options with identical shared fields hash differently."""
    assert (options_fingerprint("mfti", MftiOptions(**kwargs))
            != options_fingerprint("mfti-recursive", RecursiveOptions(**kwargs)))
