"""Tests for :mod:`repro.systems.statespace`."""

import numpy as np
import pytest

from repro.systems.statespace import DescriptorSystem, StateSpace


@pytest.fixture
def simple_system():
    """First-order low-pass: H(s) = 1 / (s + 1)."""
    return StateSpace(A=[[-1.0]], B=[[1.0]], C=[[1.0]])


class TestConstruction:
    def test_dimensions(self, small_system):
        assert small_system.order == 20
        assert small_system.n_inputs == 4
        assert small_system.n_outputs == 4
        assert small_system.n_ports == 4
        assert small_system.shape == (4, 4)

    def test_default_e_is_identity(self):
        sys_ = DescriptorSystem(None, [[-1.0]], [[1.0]], [[1.0]])
        assert np.allclose(sys_.E, np.eye(1))

    def test_default_d_is_zero(self, simple_system):
        assert np.allclose(simple_system.D, 0.0)

    def test_matrices_are_readonly(self, simple_system):
        with pytest.raises(ValueError):
            simple_system.A[0, 0] = 5.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DescriptorSystem(np.eye(2), np.eye(3), np.ones((3, 1)), np.ones((1, 3)))
        with pytest.raises(ValueError):
            DescriptorSystem(np.eye(2), -np.eye(2), np.ones((3, 1)), np.ones((1, 2)))
        with pytest.raises(ValueError):
            DescriptorSystem(np.eye(2), -np.eye(2), np.ones((2, 1)), np.ones((1, 3)))
        with pytest.raises(ValueError):
            DescriptorSystem(np.eye(2), -np.eye(2), np.ones((2, 1)), np.ones((1, 2)),
                             D=np.ones((2, 2)))

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            StateSpace([[np.nan]], [[1.0]], [[1.0]])

    def test_n_ports_rejects_rectangular(self):
        sys_ = StateSpace(-np.eye(2), np.ones((2, 3)), np.ones((1, 2)))
        with pytest.raises(ValueError):
            _ = sys_.n_ports


class TestTransferFunction:
    def test_first_order_lowpass(self, simple_system):
        assert simple_system.transfer_function(0.0)[0, 0] == pytest.approx(1.0)
        assert simple_system.transfer_function(1j)[0, 0] == pytest.approx(1.0 / (1j + 1.0))

    def test_call_alias(self, simple_system):
        assert simple_system(2.0)[0, 0] == pytest.approx(simple_system.transfer_function(2.0)[0, 0])

    def test_frequency_response_shape(self, small_system):
        response = small_system.frequency_response([1e2, 1e3, 1e4])
        assert response.shape == (3, 4, 4)

    def test_frequency_response_conjugate_symmetry(self, small_system):
        """Real systems satisfy H(-jw) = conj(H(jw))."""
        pos = small_system.evaluate_many([1j * 100.0])[0]
        neg = small_system.evaluate_many([-1j * 100.0])[0]
        assert np.allclose(neg, np.conj(pos))

    def test_dc_gain_matches_formula(self, simple_system):
        assert simple_system.dc_gain()[0, 0] == pytest.approx(1.0)

    def test_descriptor_transfer_function(self):
        # E dx = -x + u, y = x  with E = 2 gives H(s) = 1 / (2s + 1)
        sys_ = DescriptorSystem([[2.0]], [[-1.0]], [[1.0]], [[1.0]])
        assert sys_.transfer_function(1.0)[0, 0] == pytest.approx(1.0 / 3.0)

    def test_feedthrough_included(self):
        sys_ = StateSpace([[-1.0]], [[1.0]], [[1.0]], [[2.0]])
        assert sys_.transfer_function(0.0)[0, 0] == pytest.approx(3.0)


class TestTransformations:
    def test_equivalence_transform_preserves_transfer_function(self, small_system, rng):
        n = small_system.order
        t = rng.normal(size=(n, n)) + np.eye(n) * 2.0
        left = np.linalg.inv(t).T
        transformed = small_system.transformed(left, t)
        s = 1j * 2 * np.pi * 1234.0
        assert np.allclose(transformed.transfer_function(s), small_system.transfer_function(s),
                           atol=1e-8)

    def test_to_statespace_roundtrip(self, small_system):
        descriptor = DescriptorSystem(2.0 * np.eye(small_system.order), 2.0 * small_system.A,
                                      2.0 * small_system.B, small_system.C, small_system.D)
        explicit = descriptor.to_statespace()
        s = 1j * 500.0
        assert np.allclose(explicit.transfer_function(s), small_system.transfer_function(s))

    def test_to_real_drops_roundoff(self):
        sys_ = DescriptorSystem(np.eye(1) + 0j, [[-1.0 + 1e-12j]], [[1.0]], [[1.0]])
        real = sys_.to_real()
        assert real.is_real

    def test_to_real_rejects_truly_complex(self):
        sys_ = DescriptorSystem(np.eye(1), [[-1.0 + 1.0j]], [[1.0]], [[1.0]])
        with pytest.raises(ValueError):
            sys_.to_real()

    def test_with_feedthrough(self, simple_system):
        updated = simple_system.with_feedthrough([[5.0]])
        assert updated.D[0, 0] == 5.0
        assert updated.order == simple_system.order

    def test_copy_is_independent(self, simple_system):
        copy = simple_system.copy()
        assert copy is not simple_system
        assert np.allclose(copy.A, simple_system.A)

    def test_subsystem_selects_ports(self, small_system):
        sub = small_system.subsystem(outputs=[0, 2], inputs=[1])
        assert sub.shape == (2, 1)
        full = small_system.transfer_function(1j * 1e3)
        part = sub.transfer_function(1j * 1e3)
        assert np.allclose(part, full[np.ix_([0, 2], [1])])

    def test_is_real_flag(self, small_system):
        assert small_system.is_real
        complex_sys = DescriptorSystem(np.eye(1), [[-1.0 + 2j]], [[1.0]], [[1.0]])
        assert not complex_sys.is_real
