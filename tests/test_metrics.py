"""Tests for :mod:`repro.metrics`."""

import numpy as np
import pytest

from repro.core import mfti
from repro.metrics.errors import (
    aggregate_error,
    entrywise_rms_error,
    max_relative_error,
    model_errors,
    relative_error_per_frequency,
)
from repro.metrics.validation import validate_model


class TestErrorMetrics:
    def test_zero_error_for_identical(self, small_data):
        errors = relative_error_per_frequency(small_data.samples, small_data.samples)
        assert np.allclose(errors, 0.0)
        assert aggregate_error(small_data.samples, small_data.samples) == 0.0

    def test_known_relative_error(self):
        reference = np.stack([np.eye(2)])
        model = np.stack([np.eye(2) * 1.1])
        errors = relative_error_per_frequency(model, reference)
        assert errors[0] == pytest.approx(0.1)

    def test_spectral_norm_used(self):
        """The per-frequency error is based on the matrix 2-norm, not Frobenius."""
        reference = np.stack([np.eye(2)])
        perturbation = np.array([[0.1, 0.0], [0.0, 0.1]])
        errors = relative_error_per_frequency(reference + perturbation, reference)
        assert errors[0] == pytest.approx(0.1)  # Frobenius would give 0.1*sqrt(2)

    def test_zero_reference_falls_back_to_absolute(self):
        reference = np.zeros((1, 2, 2))
        model = np.stack([np.eye(2)])
        assert relative_error_per_frequency(model, reference)[0] == pytest.approx(1.0)

    def test_aggregate_is_rms_of_per_frequency(self):
        reference = np.stack([np.eye(2), np.eye(2)])
        model = np.stack([np.eye(2) * 1.1, np.eye(2) * 0.9])
        agg = aggregate_error(model, reference)
        assert agg == pytest.approx(0.1)

    def test_max_relative_error(self):
        reference = np.stack([np.eye(2), np.eye(2)])
        model = np.stack([np.eye(2) * 1.2, np.eye(2)])
        assert max_relative_error(model, reference) == pytest.approx(0.2)

    def test_entrywise_rms(self):
        reference = np.zeros((1, 1, 2))
        model = np.array([[[3.0, 4.0]]])
        assert entrywise_rms_error(model, reference) == pytest.approx(np.sqrt(12.5))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            relative_error_per_frequency(np.zeros((1, 2, 2)), np.zeros((2, 2, 2)))

    def test_2d_samples_promoted(self):
        assert relative_error_per_frequency(np.eye(2), np.eye(2)).shape == (1,)

    def test_model_errors_helper(self, small_system, small_data):
        errors = model_errors(small_system, small_data)
        assert np.allclose(errors, 0.0, atol=1e-12)


class TestValidation:
    def test_validate_true_system_is_perfect(self, small_system, small_data):
        report = validate_model(small_system, small_data)
        assert report.aggregate_error < 1e-12
        assert report.max_error < 1e-12
        assert report.is_stable
        assert report.order == small_system.order
        assert "stable" in report.summary()

    def test_validate_recovered_model(self, small_data, dense_data):
        result = mfti(small_data)
        report = validate_model(result.system, dense_data)
        assert report.aggregate_error < 1e-8
        assert report.per_frequency_error.shape == (dense_data.n_samples,)

    def test_skip_stability_check(self, small_system, small_data):
        report = validate_model(small_system, small_data, check_stability=False)
        assert np.isnan(report.spectral_abscissa)
        assert not report.is_stable  # nan compares False against 0
