"""Differential tests of the passivity-enforcement stage, end to end.

Four layers of coverage, mirroring how a certificate travels through the
repository:

* **Kernel regressions** -- the empty-sweep / bad-tolerance guards of
  :mod:`repro.vectorfitting.passivity` (a vacuous pass used to slip through
  both the batched and the reference checker) and the batched-vs-loop margin
  equivalences the enforcement stage leans on.
* **Enforcement** -- :func:`~repro.vectorfitting.enforcement.enforce_passivity`
  on a seeded, genuinely violating model: certified on a 10x-denser sweep,
  bitwise-deterministic, a bitwise no-op for already-passive inputs, and
  loudly :class:`~repro.vectorfitting.enforcement.EnforcementFailed` for
  non-passive feed-through, exhausted budgets and fit-error growth.
* **Identity** -- hypothesis properties pinning the pre-enforcement
  ``job_fingerprint`` / ``request_key`` byte-for-byte for every job without a
  :class:`~repro.vectorfitting.enforcement.PassivitySpec` (caches and dedupe
  keys must not churn), while a spec appends a distinguishing component.
* **Acceptance** -- the ``passive_macromodel_jobs`` scenario zoo through the
  BatchEngine, a 2-shard CLI round trip and a live served run, all merging
  bitwise-identical certificates with every job certified.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import (
    BatchEngine,
    FitJob,
    JobRecord,
    comparable_json,
    job_fingerprint,
    merge_shard_results,
    numerical_differences,
)
from repro.batch.shard import cli_subprocess
from repro.batch.sharding import _record_from_meta, _record_meta
from repro.cache.fingerprint import (
    combined_fingerprint,
    dataset_fingerprint,
    options_fingerprint,
)
from repro.core.options import MftiOptions, canonical_token
from repro.data.dataset import FrequencyData
from repro.experiments.workloads import passive_macromodel_jobs
from repro.serve.app import FitService, ThreadedServer
from repro.serve.client import Client
from repro.serve.protocol import decode_record, encode_record, request_key
from repro.systems.random_systems import random_stable_system
from repro.vectorfitting.enforcement import (
    PASSIVITY_METRIC_KEYS,
    EnforcementFailed,
    PassivityCertificate,
    PassivitySpec,
    as_pole_residue,
    enforce_passivity,
    passivity_margins,
    refine_violation_bands,
)
from repro.vectorfitting.passivity import passivity_violations, passivity_violations_reference
from repro.vectorfitting.rational import PoleResidueModel

run_cli = cli_subprocess

#: Both passivity checkers must share the validation behaviour: the batched
#: kernel path and the per-frequency oracle loop.
BOTH_CHECKERS = (passivity_violations, passivity_violations_reference)

#: Scaled-down scenario zoo (8 jobs): every noise x band regime certifies in
#: about a second while still spanning S and Z representations.
GRID_KWARGS = dict(
    n_samples=32, n_validation=64, n_check=48, line_sections=10, mesh_rows=2, mesh_cols=3
)


def _violating_model(seed: int, *, n_ports: int = 2, n_pairs: int = 5) -> PoleResidueModel:
    """A seeded stable pole-residue model normalized to sigma_max ~ 1.04."""
    rng = np.random.default_rng(seed)
    f0 = rng.uniform(1e6, 1e9, n_pairs)
    zeta = rng.uniform(0.05, 0.3, n_pairs)
    w0 = 2.0 * np.pi * f0
    half = -zeta * w0 + 1j * w0 * np.sqrt(1.0 - zeta**2)
    poles = np.concatenate([half, half.conj()])
    shape = (n_pairs, n_ports, n_ports)
    r_half = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    residues = np.concatenate([r_half, r_half.conj()]) * 1e8
    d = 0.2 * np.eye(n_ports)
    model = PoleResidueModel(poles, residues, d=d)
    probe = np.geomspace(1e5, 5e9, 2048)
    response = np.asarray(model.frequency_response(probe))
    sigma_max = float(np.linalg.svd(response, compute_uv=False)[:, 0].max())
    return PoleResidueModel(poles, residues * (1.04 / sigma_max), d=d)


@pytest.fixture(scope="module")
def violating():
    """(model, fit data, spec): a genuine violator and its enforcement setup."""
    model = _violating_model(7)
    freqs = np.geomspace(1e6, 1e9, 40)
    data = FrequencyData(freqs, np.asarray(model.frequency_response(freqs)), kind="S")
    spec = PassivitySpec(
        n_check=64, band_factor=2.0, max_iterations=30, max_error_growth=5.0, holdout_oversample=2
    )
    return model, data, spec


@pytest.fixture(scope="module")
def enforced(violating):
    model, data, spec = violating
    return enforce_passivity(model, data, spec)


@pytest.fixture(scope="module")
def grid_jobs():
    return passive_macromodel_jobs(**GRID_KWARGS)


@pytest.fixture(scope="module")
def reference_run(grid_jobs):
    result = BatchEngine().run(grid_jobs)
    assert result.n_failed == 0, result.failures
    return result


# --------------------------------------------------------------------------- #
# kernel regressions: sweep validation and margin equivalences
# --------------------------------------------------------------------------- #
class TestSweepValidationRegression:
    """An empty sweep or a broken tolerance used to yield a vacuous pass."""

    @pytest.mark.parametrize("check", BOTH_CHECKERS)
    def test_empty_sweep_raises_instead_of_passing(self, check, violating):
        model, _, _ = violating
        with pytest.raises(ValueError, match="empty frequency sweep"):
            check(model, [])

    @pytest.mark.parametrize("check", BOTH_CHECKERS)
    @pytest.mark.parametrize("tolerance", [float("nan"), float("inf"), -1e-9])
    def test_non_finite_or_negative_tolerance_raises(self, check, tolerance, violating):
        model, _, _ = violating
        with pytest.raises(ValueError, match="tolerance"):
            check(model, np.geomspace(1e6, 1e9, 4), tolerance=tolerance)

    def test_batched_and_reference_checkers_agree_on_the_violator(self, violating):
        model, _, _ = violating
        freqs = np.geomspace(1e5, 5e9, 512)
        fast = passivity_violations(model, freqs)
        slow = passivity_violations_reference(model, freqs)
        assert [v.frequency_hz for v in fast] == [v.frequency_hz for v in slow]
        assert fast and all(v.metric > 1.0 for v in fast)

    def test_immittance_margins_match_the_per_frequency_loop(self):
        model = _violating_model(11, n_ports=3)
        freqs = np.geomspace(1e6, 1e9, 64)
        batched = passivity_margins(model, freqs, representation="Z")
        response = np.asarray(model.frequency_response(freqs))
        for index, matrix in enumerate(response):
            hermitian = 0.5 * (matrix + matrix.conj().T)
            loop = float(np.min(np.linalg.eigvalsh(hermitian)))
            assert batched[index] == pytest.approx(loop, rel=1e-12, abs=1e-15)

    def test_margins_reject_unknown_representations(self, violating):
        model, _, _ = violating
        with pytest.raises(ValueError, match="representation"):
            passivity_margins(model, np.geomspace(1e6, 1e9, 4), representation="T")

    def test_refinement_returns_a_sorted_superset_with_exact_margins(self, violating):
        model, _, spec = violating
        base = np.geomspace(1e6, 1e9, 33)
        freqs, margins = refine_violation_bands(model, base, levels=2, threshold=spec.slack)
        assert np.all(np.diff(freqs) > 0.0)
        assert np.isin(base, freqs).all()
        assert freqs.size > base.size  # the violator forces midpoint insertion
        recomputed = passivity_margins(model, freqs)
        np.testing.assert_array_equal(margins, recomputed)


# --------------------------------------------------------------------------- #
# the spec
# --------------------------------------------------------------------------- #
class TestPassivitySpec:
    def test_defaults_round_trip_through_to_dict(self):
        spec = PassivitySpec()
        assert PassivitySpec(**spec.to_dict()) == spec
        assert [key for key, _ in spec.canonical_items()] == sorted(spec.to_dict())

    def test_fields_are_coerced_to_plain_python_scalars(self):
        spec = PassivitySpec(n_check=np.int64(32), band_factor=np.float64(1.5))
        assert spec.n_check == 32 and type(spec.n_check) is int
        assert spec.band_factor == 1.5 and type(spec.band_factor) is float

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"representation": "T"},
            {"n_check": 1},
            {"n_check": 2.5},
            {"band_factor": 0.99},
            {"band_factor": float("nan")},
            {"slack": 0.0},
            {"slack": 1.0},
            {"tolerance": -1e-12},
            {"tolerance": float("nan")},
            {"max_iterations": 0},
            {"refine_levels": -1},
            {"holdout_oversample": 1},
            {"max_error_growth": -0.5},
        ],
    )
    def test_invalid_specs_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PassivitySpec(**kwargs)


# --------------------------------------------------------------------------- #
# the enforcement stage
# --------------------------------------------------------------------------- #
class TestEnforcement:
    def test_the_fixture_model_genuinely_violates(self, violating):
        model, _, _ = violating
        assert passivity_violations(model, np.geomspace(1e5, 5e9, 512))

    def test_enforced_model_passes_a_10x_denser_sweep(self, violating, enforced):
        _, _, spec = violating
        model, certificate = enforced
        dense = np.concatenate(
            [[0.0], np.geomspace(certificate.f_min_hz, certificate.f_max_hz, 10 * spec.n_check)]
        )
        assert not passivity_violations(model, dense, tolerance=spec.tolerance)
        assert certificate.worst_margin >= -spec.tolerance
        assert 1 <= certificate.iterations <= spec.max_iterations
        assert certificate.perturbation_norm > 0.0
        assert certificate.n_frequencies >= spec.holdout_oversample * spec.n_check

    def test_enforcement_only_touches_residues(self, violating, enforced):
        original, _, _ = violating
        model, _ = enforced
        assert np.array_equal(np.asarray(model.poles), np.asarray(original.poles))
        assert np.array_equal(np.asarray(model.d), np.asarray(original.d))
        assert not np.array_equal(np.asarray(model.residues), np.asarray(original.residues))

    def test_enforcement_is_bitwise_deterministic(self, violating, enforced):
        model, data, spec = violating
        again, certificate_again = enforce_passivity(model, data, spec)
        enforced_model, certificate = enforced
        assert np.array_equal(np.asarray(again.residues), np.asarray(enforced_model.residues))
        assert certificate_again == certificate

    def test_already_passive_model_is_a_bitwise_noop(self, violating):
        model, data, spec = violating
        passive = PoleResidueModel(model.poles, np.asarray(model.residues) * 0.5, d=model.d)
        result, certificate = enforce_passivity(passive, data, spec)
        assert result is passive
        assert certificate.iterations == 0
        assert certificate.perturbation_norm == 0.0
        assert certificate.error_delta == 0.0
        assert certificate.worst_margin > 0.0

    def test_non_passive_feedthrough_fails_loudly(self, violating):
        model, data, spec = violating
        improper = PoleResidueModel(model.poles, model.residues, d=1.5 * np.eye(2))
        with pytest.raises(EnforcementFailed, match="feed-through"):
            enforce_passivity(improper, data, spec)

    def test_exhausted_iteration_budget_fails_loudly(self, violating):
        model, data, _ = violating
        impatient = PassivitySpec(
            n_check=64,
            band_factor=2.0,
            max_iterations=1,
            max_error_growth=5.0,
            holdout_oversample=2,
        )
        with pytest.raises(EnforcementFailed, match="violations remain"):
            enforce_passivity(model, data, impatient)

    def test_fit_error_growth_beyond_budget_fails_loudly(self, violating):
        model, data, _ = violating
        strict = PassivitySpec(
            n_check=64,
            band_factor=2.0,
            max_iterations=30,
            max_error_growth=0.0,
            holdout_oversample=2,
        )
        with pytest.raises(EnforcementFailed, match="fit error"):
            enforce_passivity(model, data, strict)

    def test_as_pole_residue_unwraps_and_rejects(self, violating):
        model, _, _ = violating
        assert as_pole_residue(model) is model

        class Wrapper:
            def __init__(self, inner):
                self.model = inner

        assert as_pole_residue(Wrapper(model)) is model
        with pytest.raises(TypeError, match="pole-residue"):
            as_pole_residue(object())

    def test_as_pole_residue_matches_the_descriptor_response(self):
        system = random_stable_system(4, n_ports=2, seed=5)
        converted = as_pole_residue(system)
        freqs = np.geomspace(1e1, 1e5, 32)
        original = np.asarray(system.frequency_response(freqs))
        rebuilt = np.asarray(converted.frequency_response(freqs))
        scale = float(np.abs(original).max())
        assert float(np.abs(rebuilt - original).max()) <= 1e-9 * scale


# --------------------------------------------------------------------------- #
# certificate round trips: metrics dict, shard meta, wire protocol
# --------------------------------------------------------------------------- #
class TestCertificateRoundTrip:
    def test_to_metrics_covers_exactly_the_exported_columns(self, enforced):
        _, certificate = enforced
        assert tuple(certificate.to_metrics()) == PASSIVITY_METRIC_KEYS

    def test_from_metrics_inverts_to_metrics_exactly(self, enforced):
        _, certificate = enforced
        rebuilt = PassivityCertificate.from_metrics("S", certificate.to_metrics())
        assert rebuilt == certificate

    def test_from_metrics_rejects_missing_columns(self, enforced):
        _, certificate = enforced
        metrics = certificate.to_metrics()
        metrics.pop("worst_margin")
        with pytest.raises(ValueError, match="worst_margin"):
            PassivityCertificate.from_metrics("S", metrics)

    def test_certificate_columns_survive_the_shard_meta_round_trip(self, enforced):
        _, certificate = enforced
        record = JobRecord(
            index=3,
            label="probe",
            method="mfti",
            tags={"study": "passive"},
            status="ok",
            passivity=certificate.to_metrics(),
        )
        meta = json.loads(json.dumps(_record_meta(record)))
        rebuilt = _record_from_meta(meta, {})
        assert rebuilt.passivity == record.passivity
        assert PassivityCertificate.from_metrics("S", rebuilt.passivity) == certificate

    def test_certificate_columns_survive_the_wire_round_trip(self, enforced):
        _, certificate = enforced
        record = JobRecord(
            index=0,
            label="probe",
            method="mfti",
            tags={},
            status="ok",
            passivity=certificate.to_metrics(),
        )
        rebuilt = decode_record(json.loads(json.dumps(encode_record(record))))
        assert rebuilt.passivity == record.passivity


# --------------------------------------------------------------------------- #
# identity: pre-enforcement fingerprints must not churn
# --------------------------------------------------------------------------- #
def _pre_enforcement_job_fingerprint(job: FitJob) -> str:
    """The ``job_fingerprint`` formula exactly as it stood before specs existed."""
    tag_items = [
        f"{canonical_token(key)}={canonical_token(job.tags[key])}" for key in sorted(job.tags)
    ]
    reference = dataset_fingerprint(job.reference) if job.reference is not None else "none"
    return combined_fingerprint(
        "shard-job",
        [
            "data:" + dataset_fingerprint(job.data),
            "method:" + canonical_token(job.method),
            "options:" + options_fingerprint(job.method, job.options),
            "label:" + canonical_token(job.label),
            "tags:" + "{" + ",".join(tag_items) + "}",
            "reference:" + reference,
        ],
    )


def _pre_enforcement_request_key(job: FitJob) -> str:
    """The ``request_key`` formula exactly as it stood before specs existed."""
    reference = dataset_fingerprint(job.reference) if job.reference is not None else "none"
    return combined_fingerprint(
        "serve-request",
        [
            "data:" + dataset_fingerprint(job.data),
            "method:" + str(job.method),
            "options:" + options_fingerprint(job.method, job.options),
            "reference:" + reference,
        ],
    )


_DIMS = st.integers(min_value=1, max_value=2)
_COUNTS = st.integers(min_value=2, max_value=4)
_FINITE = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)
_TAGS = st.dictionaries(
    st.text(alphabet="abcxyz", min_size=1, max_size=4),
    st.one_of(st.integers(min_value=-5, max_value=5), st.text(alphabet="pq", max_size=3)),
    max_size=2,
)


@st.composite
def datasets(draw) -> FrequencyData:
    """A small random-but-valid FrequencyData."""
    k, p, m = draw(_COUNTS), draw(_DIMS), draw(_DIMS)
    gaps = draw(st.lists(st.floats(min_value=0.5, max_value=10.0), min_size=k, max_size=k))
    freqs = np.cumsum(np.asarray(gaps, dtype=float)) + 1.0
    real = draw(st.lists(_FINITE, min_size=k * p * m, max_size=k * p * m))
    imag = draw(st.lists(_FINITE, min_size=k * p * m, max_size=k * p * m))
    samples = (np.asarray(real) + 1j * np.asarray(imag)).reshape(k, p, m)
    kind = draw(st.sampled_from(["S", "Z"]))
    return FrequencyData(freqs, samples, kind=kind, label="generated")


class TestFingerprintCompatibility:
    @settings(max_examples=25, deadline=None)
    @given(
        data=datasets(),
        with_reference=st.booleans(),
        label=st.text(alphabet="abc-", max_size=6),
        tags=_TAGS,
        block_size=st.integers(min_value=1, max_value=3),
    )
    def test_jobs_without_a_spec_keep_their_pre_enforcement_identity(
        self, data, with_reference, label, tags, block_size
    ):
        job = FitJob(
            data,
            method="mfti",
            options=MftiOptions(block_size=block_size),
            label=label,
            tags=tags,
            reference=data if with_reference else None,
        )
        assert job_fingerprint(job) == _pre_enforcement_job_fingerprint(job)
        assert request_key(job) == _pre_enforcement_request_key(job)

    def test_a_spec_appends_a_fingerprint_component(self, grid_jobs):
        job = grid_jobs[0]
        assert job.passivity is not None
        stripped = dataclasses.replace(job, passivity=None)
        assert job_fingerprint(job) != job_fingerprint(stripped)
        assert request_key(job) != request_key(stripped)
        assert job_fingerprint(stripped) == _pre_enforcement_job_fingerprint(stripped)
        assert request_key(stripped) == _pre_enforcement_request_key(stripped)

    def test_different_specs_get_different_identities(self, grid_jobs):
        job = grid_jobs[0]
        loosened = dataclasses.replace(
            job, passivity=dataclasses.replace(job.passivity, slack=2e-3)
        )
        assert job_fingerprint(job) != job_fingerprint(loosened)
        assert request_key(job) != request_key(loosened)


# --------------------------------------------------------------------------- #
# the acceptance contract: scenario zoo through engine, shards and serve
# --------------------------------------------------------------------------- #
class TestPassiveMacromodelAcceptance:
    def test_every_job_emits_a_passing_certificate(self, grid_jobs, reference_run):
        assert len(grid_jobs) == 8
        assert reference_run.n_failed == 0
        for job, record in zip(grid_jobs, reference_run.records):
            spec = job.passivity
            assert spec is not None and job.reference is not None
            assert tuple(record.passivity) == PASSIVITY_METRIC_KEYS
            certificate = PassivityCertificate.from_metrics(spec.representation, record.passivity)
            assert certificate.worst_margin >= -spec.tolerance
            assert 0 <= certificate.iterations <= spec.max_iterations
            assert certificate.n_frequencies >= spec.holdout_oversample * spec.n_check
            assert 0.0 < certificate.f_min_hz < certificate.f_max_hz

    def test_two_shard_cli_round_trip_merges_bitwise(self, grid_jobs, reference_run, tmp_path):
        shard_dir = tmp_path / "shards"
        plan = run_cli(
            "plan",
            "--workload",
            "passive_macromodel_jobs",
            "--workload-args",
            json.dumps(GRID_KWARGS),
            "--shards",
            "2",
            "--out-dir",
            str(shard_dir),
        )
        assert plan.returncode == 0, plan.stderr
        manifests = sorted(shard_dir.glob("*.manifest.json"))
        assert len(manifests) == 2
        shard_files = []
        for manifest in manifests:
            run = run_cli("run", str(manifest))
            assert run.returncode == 0, run.stderr
            shard_files.append(str(manifest).replace(".manifest.json", ".result.npz"))
        merged = merge_shard_results(shard_files)
        assert not numerical_differences(reference_run, merged)
        assert comparable_json(reference_run) == comparable_json(merged)
        merged_passivity = [record.passivity for record in merged.records]
        assert merged_passivity == [record.passivity for record in reference_run.records]
        assert all(merged_passivity)

    def test_served_certificates_match_the_local_run_bitwise(self, grid_jobs, reference_run):
        engine = BatchEngine(executor="thread", max_workers=2)
        with ThreadedServer(FitService(engine)) as server:
            served = Client(server.host, server.port).submit(grid_jobs)
        assert comparable_json(served) == comparable_json(reference_run)
        served_passivity = [record.passivity for record in served.records]
        assert served_passivity == [record.passivity for record in reference_run.records]
        assert all(served_passivity)
