"""Tests of the batch macromodeling engine (``repro.batch``).

Covers the engine's contract: the three executors produce identical (bitwise)
results on a seeded job grid, a raising job is recorded as failed without
aborting the batch, chunking is deterministic, and the JSON export is stable
and round-trippable.  Also covers the shared ``run_fit`` entry point the
engine dispatches through.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.batch import (
    EXECUTORS,
    BatchEngine,
    BatchResult,
    FitJob,
    numerical_differences,
    run_job,
)
from repro.core import available_methods, run_fit
from repro.core.options import MftiOptions, RecursiveOptions, VftiOptions


@pytest.fixture(scope="module")
def job_grid(small_data, noisy_data, dense_data):
    """Seeded mixed-method grid over two datasets (8 jobs, all deterministic)."""
    jobs = []
    for name, data in (("clean", small_data), ("noisy", noisy_data)):
        jobs.append(FitJob(data, method="vfti", options=VftiOptions(),
                           label=f"{name}/vfti", tags={"dataset": name},
                           reference=dense_data))
        for block in (1, 2):
            jobs.append(FitJob(
                data, method="mfti",
                options=MftiOptions(block_size=block, direction_kind="random",
                                    direction_seed=1234),
                label=f"{name}/mfti-t{block}", tags={"dataset": name, "t": block},
                reference=dense_data))
        jobs.append(FitJob(
            data, method="mfti-recursive",
            options=RecursiveOptions(block_size=2, samples_per_iteration=2,
                                     rank_method="tolerance", rank_tolerance=1e-8),
            label=f"{name}/recursive", tags={"dataset": name},
            reference=dense_data))
    return jobs


# --------------------------------------------------------------------------- #
# run_fit entry point
# --------------------------------------------------------------------------- #
class TestRunFit:
    def test_available_methods(self):
        assert available_methods() == ("mfti", "mfti-recursive", "vfti")

    def test_dispatch_matches_frontends(self, small_data):
        from repro.core import mfti, vfti

        direct = mfti(small_data, options=MftiOptions(block_size=2))
        routed = run_fit(small_data, method="mfti", options=MftiOptions(block_size=2))
        assert np.array_equal(direct.system.A, routed.system.A)

        direct = vfti(small_data)
        routed = run_fit(small_data, method="vfti")
        assert np.array_equal(direct.system.A, routed.system.A)

    def test_keyword_shortcut(self, small_data):
        result = run_fit(small_data, method="mfti", block_size=2)
        assert result.metadata["block_sizes"] == (2,) * small_data.n_samples

    def test_unknown_method(self, small_data):
        with pytest.raises(ValueError, match="unknown method"):
            run_fit(small_data, method="nope")

    def test_wrong_options_type(self, small_data):
        with pytest.raises(TypeError, match="expects MftiOptions"):
            run_fit(small_data, method="mfti", options=VftiOptions())


# --------------------------------------------------------------------------- #
# FitJob / run_job
# --------------------------------------------------------------------------- #
class TestFitJob:
    def test_default_label(self, small_data):
        job = FitJob(small_data, method="vfti")
        assert job.label == "vfti [small]"

    def test_unknown_method_rejected(self, small_data):
        with pytest.raises(ValueError, match="unknown method"):
            FitJob(small_data, method="typo")

    def test_mismatched_options_rejected(self, small_data):
        with pytest.raises(TypeError, match="expects VftiOptions"):
            FitJob(small_data, method="vfti", options=MftiOptions())

    def test_live_generator_seed_rejected(self, small_data):
        options = MftiOptions(direction_kind="random",
                              direction_seed=np.random.default_rng(0))
        with pytest.raises(TypeError, match="integer direction_seed"):
            FitJob(small_data, method="mfti", options=options)

    def test_run_job_success(self, small_data, dense_data):
        record = run_job(4, FitJob(small_data, method="mfti", reference=dense_data))
        assert record.ok and record.status == "ok"
        assert record.index == 4
        assert record.order == record.result.order
        assert record.error_vs_data < 1e-6
        assert record.error_vs_reference < 1e-6
        assert record.error_type is None

    def test_run_job_failure_captured(self, small_data):
        bad = FitJob(small_data.subset([0]), method="mfti", label="bad")
        record = run_job(0, bad)
        assert not record.ok and record.status == "failed"
        assert record.result is None and record.order is None
        assert record.error_type == "ValueError"
        assert "two sampled frequencies" in record.error_message
        assert "Traceback" in record.error_traceback
        assert np.isnan(record.error_vs_reference)

    def test_record_to_dict_is_json_safe(self, small_data):
        record = run_job(0, FitJob(small_data.subset([0]), method="mfti"))
        payload = json.loads(json.dumps(record.to_dict()))
        assert payload["status"] == "failed"
        assert payload["error"]["type"] == "ValueError"
        assert payload["error_vs_reference"] is None


# --------------------------------------------------------------------------- #
# BatchEngine
# --------------------------------------------------------------------------- #
def _assert_identical(reference: BatchResult, other: BatchResult) -> None:
    assert numerical_differences(reference, other) == []


class TestBatchEngine:
    def test_serial_runs_grid(self, job_grid):
        result = BatchEngine().run(job_grid)
        assert result.n_jobs == len(job_grid)
        assert result.n_failed == 0
        assert [r.index for r in result.records] == list(range(len(job_grid)))

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_pooled_backends_match_serial_bitwise(self, job_grid, executor):
        serial = BatchEngine().run(job_grid)
        pooled = BatchEngine(executor=executor, max_workers=2).run(job_grid)
        _assert_identical(serial, pooled)

    def test_chunking_does_not_change_results(self, job_grid):
        reference = BatchEngine().run(job_grid)
        chunked = BatchEngine(chunk_size=3).run(job_grid)
        _assert_identical(reference, chunked)
        assert chunked.chunk_size == 3

    def test_failing_job_does_not_abort_batch(self, small_data, dense_data):
        jobs = [
            FitJob(small_data, method="mfti", label="good-1", reference=dense_data),
            FitJob(small_data.subset([0]), method="mfti", label="poison"),
            FitJob(small_data, method="vfti", label="good-2", reference=dense_data),
        ]
        result = BatchEngine().run(jobs)
        assert result.n_ok == 2 and result.n_failed == 1
        assert result.failures[0].label == "poison"
        assert result.record_for("good-2").ok

    def test_deterministic_chunk_layout(self):
        engine = BatchEngine(executor="thread", max_workers=2)
        assert engine.resolve_chunk_size(16) == 2
        assert engine.resolve_chunk_size(3) == 1
        assert BatchEngine(chunk_size=5).resolve_chunk_size(100) == 5

    def test_empty_batch(self):
        result = BatchEngine().run([])
        assert result.n_jobs == 0 and result.wall_seconds >= 0.0

    def test_invalid_configuration(self):
        with pytest.raises(ValueError, match="executor"):
            BatchEngine(executor="gpu")
        with pytest.raises(ValueError, match="max_workers"):
            BatchEngine(max_workers=0)
        with pytest.raises(ValueError, match="chunk_size"):
            BatchEngine(chunk_size=0)
        assert set(EXECUTORS) == {"serial", "thread", "process"}

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_EXECUTOR", "thread")
        monkeypatch.setenv("REPRO_BATCH_WORKERS", "3")
        monkeypatch.setenv("REPRO_BATCH_CHUNK", "2")
        engine = BatchEngine.from_env()
        assert (engine.executor, engine.max_workers, engine.chunk_size) == ("thread", 3, 2)
        monkeypatch.delenv("REPRO_BATCH_EXECUTOR")
        assert BatchEngine.from_env(default="serial").executor == "serial"


# --------------------------------------------------------------------------- #
# BatchResult
# --------------------------------------------------------------------------- #
class TestBatchResult:
    @pytest.fixture(scope="class")
    def batch(self, job_grid):
        return BatchEngine().run(job_grid)

    def test_selection_helpers(self, batch):
        assert len(batch.with_tag("dataset", "clean")) == 4
        assert len(batch.with_tag("t")) == 4
        best = batch.best()
        assert best.error_vs_reference == min(
            r.error_vs_reference for r in batch.ok_records)

    def test_raise_failures(self, batch, small_data):
        assert batch.raise_failures() is batch  # clean batch: chains through
        failed = BatchEngine().run(
            [FitJob(small_data.subset([0]), method="mfti", label="bad",
                    tags={"suite": "unit"})])
        with pytest.raises(RuntimeError) as excinfo:
            failed.raise_failures(context="sweep job")
        message = str(excinfo.value)
        assert "sweep job 'bad'" in message
        assert "{'suite': 'unit'}" in message
        assert "Traceback" in message

    def test_summary_table(self, batch):
        table = batch.summary_table()
        assert "clean/mfti-t2" in table
        assert "executor=serial" in table

    def test_json_roundtrip(self, batch, tmp_path):
        path = batch.save_json(str(tmp_path / "nested" / "batch.json"))
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["schema_version"] == 5
        assert payload["n_jobs"] == batch.n_jobs
        assert payload["n_failed"] == 0
        assert payload["n_cache_hits"] == 0  # batch ran without a cache
        assert payload["jobs"][0]["cache"] is None
        assert len(payload["jobs"]) == batch.n_jobs
        assert payload["jobs"][0]["label"] == batch.records[0].label
        assert payload["total_fit_seconds"] == pytest.approx(batch.total_fit_seconds)
