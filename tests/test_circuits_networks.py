"""Tests for the RLC network, transmission-line and PDN generators."""

import numpy as np
import pytest

from repro.circuits.mna import netlist_to_descriptor
from repro.circuits.pdn import PdnConfiguration, build_pdn_netlist, power_distribution_network
from repro.circuits.rlc_networks import coupled_rlc_lines, rc_ladder, rlc_grid, rlc_ladder
from repro.circuits.transmission_line import lumped_transmission_line, multiconductor_line
from repro.systems.analysis import spectral_abscissa


class TestLadders:
    def test_rc_ladder_ports_and_dc(self):
        net = rc_ladder(5, resistance=10.0, capacitance=1e-12, load_resistance=50.0)
        sys_ = netlist_to_descriptor(net)
        assert sys_.n_ports == 2
        # at DC the injected current flows through all five series resistors into the load
        z = sys_.transfer_function(0.0)
        assert z[0, 0] == pytest.approx(5 * 10.0 + 50.0, rel=1e-9)
        assert z[1, 0] == pytest.approx(50.0, rel=1e-9)

    def test_rc_ladder_single_port(self):
        net = rc_ladder(3, two_port=False)
        assert netlist_to_descriptor(net).n_ports == 1

    def test_rc_ladder_load_resistance_sets_dc_impedance(self):
        net = rc_ladder(4, resistance=10.0, load_resistance=100.0)
        z = netlist_to_descriptor(net).transfer_function(0.0)
        assert z[0, 0] == pytest.approx(4 * 10.0 + 100.0, rel=1e-9)

    def test_rlc_ladder_stable(self):
        sys_ = netlist_to_descriptor(rlc_ladder(6))
        assert spectral_abscissa(sys_) < 0

    def test_rlc_ladder_order_scales_with_sections(self):
        small = netlist_to_descriptor(rlc_ladder(3))
        large = netlist_to_descriptor(rlc_ladder(9))
        assert large.order > small.order

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            rc_ladder(0)
        with pytest.raises(ValueError):
            rlc_ladder(3, resistance=-1.0)


class TestCoupledAndGrid:
    def test_coupled_lines_port_count(self):
        net = coupled_rlc_lines(3, 4)
        assert netlist_to_descriptor(net).n_ports == 6

    def test_coupled_lines_have_crosstalk(self):
        net = coupled_rlc_lines(2, 5)
        sys_ = netlist_to_descriptor(net)
        z = sys_.transfer_function(1j * 2 * np.pi * 1e9)
        # port 0 is line-0 near end, port 2 is line-1 near end: coupling is nonzero
        assert abs(z[2, 0]) > 0

    def test_grid_default_ports_at_corners(self):
        net = rlc_grid(3, 4)
        assert netlist_to_descriptor(net).n_ports == 4

    def test_grid_custom_ports(self):
        net = rlc_grid(3, 3, port_nodes=[(0, 0), (1, 1)])
        assert netlist_to_descriptor(net).n_ports == 2

    def test_grid_rejects_out_of_range_port(self):
        with pytest.raises(ValueError):
            rlc_grid(2, 2, port_nodes=[(5, 0)])

    def test_grid_stable(self):
        assert spectral_abscissa(netlist_to_descriptor(rlc_grid(3, 3))) < 0


class TestTransmissionLines:
    def test_two_port_line(self):
        net = lumped_transmission_line(0.1, 20)
        sys_ = netlist_to_descriptor(net)
        assert sys_.n_ports == 2
        assert spectral_abscissa(sys_) < 0

    def test_longer_line_has_more_capacitance(self):
        """Well below resonance the input impedance is set by the total line capacitance."""
        short = netlist_to_descriptor(lumped_transmission_line(0.05, 20, name_prefix="s"))
        long = netlist_to_descriptor(lumped_transmission_line(0.2, 20, name_prefix="l"))
        f_low = 1e5
        z_short = abs(short.transfer_function(1j * 2 * np.pi * f_low)[0, 0])
        z_long = abs(long.transfer_function(1j * 2 * np.pi * f_low)[0, 0])
        assert z_long < z_short
        assert z_long == pytest.approx(z_short / 4.0, rel=0.2)

    def test_multiconductor_ports(self):
        net = multiconductor_line(3, 0.05, 4)
        assert netlist_to_descriptor(net).n_ports == 6

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            lumped_transmission_line(-1.0, 10)
        with pytest.raises(ValueError):
            multiconductor_line(2, 0.1, 4, inductive_coupling=1.5)


class TestPdn:
    def test_default_configuration_is_14_ports(self):
        sys_ = power_distribution_network()
        assert sys_.n_ports == 14
        assert sys_.order > 100

    def test_pdn_stable(self, tiny_pdn_system):
        assert spectral_abscissa(tiny_pdn_system) < 0

    def test_pdn_reproducible(self):
        config = PdnConfiguration(n_ports=4, grid_rows=4, grid_cols=4)
        a = power_distribution_network(config)
        b = power_distribution_network(config)
        assert np.allclose(a.A, b.A)

    def test_pdn_return_mna_metadata(self):
        config = PdnConfiguration(n_ports=3, grid_rows=3, grid_cols=4, n_decaps=2, n_bulk_caps=1)
        mna = power_distribution_network(config, return_mna=True)
        assert mna.port_names == ("PORT1", "PORT2", "PORT3")
        assert mna.parameter_kind == "Z"

    def test_pdn_impedance_profile_has_resonances(self, tiny_pdn_system):
        """The PDN impedance seen at a port must show anti-resonance structure."""
        freqs = np.logspace(6, 9.5, 120)
        z11 = np.abs(tiny_pdn_system.frequency_response(freqs)[:, 0, 0])
        ratio = np.max(z11) / np.min(z11)
        assert ratio > 10.0

    def test_pdn_port_count_validation(self):
        with pytest.raises(ValueError):
            PdnConfiguration(n_ports=30, grid_rows=3, grid_cols=3)

    def test_pdn_netlist_contains_vrm(self):
        net = build_pdn_netlist(PdnConfiguration(n_ports=2, grid_rows=3, grid_cols=3))
        assert any(node.startswith("vrm") for node in net.nodes)
