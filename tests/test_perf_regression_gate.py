"""Unit tests of the perf-regression gate's rule engine.

``benchmarks/check_perf_regression.py`` is a standalone CI script (the
``benchmarks`` directory is not a package), so it is loaded here by file
path.  These tests pin the rule semantics the committed baselines rely on
-- hard bounds, cross-field equality, tolerance bands in both directions --
and that malformed or vacuous rules fail loudly instead of passing as
"0/0 checks ok".
"""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

_GATE_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                          "benchmarks", "check_perf_regression.py")


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_perf_regression", _GATE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


PAYLOAD = {
    "benchmark": "demo",
    "n_jobs": 8,
    "hits": 8,
    "speedup": 12.0,
    "wall_seconds": 1.5,
    "workloads": {"pdn": {"speedup_cold": 10.0}},
}


class TestRules:
    def test_min_max_bounds(self, gate):
        ok = gate.check_rule(PAYLOAD, "speedup", {"min": 5.0, "max": 20.0})
        assert [record["ok"] for record in ok] == [True, True]
        bad = gate.check_rule(PAYLOAD, "speedup", {"min": 50.0})
        assert [record["ok"] for record in bad] == [False]

    def test_equals_field(self, gate):
        assert gate.check_rule(PAYLOAD, "hits", {"equals_field": "n_jobs"})[0]["ok"]
        assert not gate.check_rule(PAYLOAD, "speedup", {"equals_field": "n_jobs"})[0]["ok"]

    def test_tolerance_bands(self, gate):
        lower = gate.check_rule(PAYLOAD, "wall_seconds",
                                {"baseline": 1.0, "rtol": 1.0, "direction": "lower"})
        assert lower[0]["ok"]  # 1.5 <= 1.0 * 2
        higher = gate.check_rule(PAYLOAD, "speedup",
                                 {"baseline": 40.0, "rtol": 0.5, "direction": "higher"})
        assert not higher[0]["ok"]  # 12 < 40 * 0.5

    def test_dotted_paths(self, gate):
        record = gate.check_rule(PAYLOAD, "workloads.pdn.speedup_cold", {"min": 5.0})[0]
        assert record["ok"]
        missing = gate.check_rule(PAYLOAD, "workloads.tline.speedup_cold", {"min": 5.0})[0]
        assert not missing["ok"]

    def test_list_index_paths(self, gate):
        """Integer path segments index into lists (row-structured exports)."""
        payload = {"rows": [{"error": 0.5}, {"error": 0.01, "nested": [3.0]}]}
        assert gate.resolve_field(payload, "rows.1.error") == 0.01
        assert gate.resolve_field(payload, "rows.1.nested.0") == 3.0
        assert gate.resolve_field(payload, "rows.-1.error") == 0.01
        assert gate.resolve_field(payload, "rows.2.error") is None
        assert gate.resolve_field(payload, "rows.notanint") is None
        ok = gate.check_rule(payload, "rows.0.error", {"min": 0.1})[0]
        assert ok["ok"]
        out_of_range = gate.check_rule(payload, "rows.9.error", {"min": 0.1})[0]
        assert not out_of_range["ok"] and out_of_range["check"] == "present"

    def test_vacuous_rule_fails_loudly(self, gate):
        records = gate.check_rule(PAYLOAD, "speedup",
                                  {"rtol": 0.7, "direction": "higher"})
        assert [record["ok"] for record in records] == [False]
        records = gate.check_rule(PAYLOAD, "speedup", {"min": 5.0, "rtol": 0.7})
        assert [record["ok"] for record in records] == [False]

    def test_unknown_rule_keys_fail(self, gate):
        records = gate.check_rule(PAYLOAD, "speedup", {"minimum": 5.0})
        assert [record["ok"] for record in records] == [False]

    def test_non_numeric_field_fails(self, gate):
        records = gate.check_rule(PAYLOAD, "benchmark", {"min": 1.0})
        assert [record["ok"] for record in records] == [False]


class TestRun:
    def _write(self, path, document):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)

    def test_directory_run_reports_and_gates(self, gate, tmp_path):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        results.mkdir()
        baselines.mkdir()
        self._write(results / "BENCH_demo.json", PAYLOAD)
        self._write(baselines / "demo.json",
                    {"benchmark": "demo", "rules": {"speedup": {"min": 5.0}}})
        report = gate.run(str(results), str(baselines))
        assert report["ok"]
        assert report["unchecked_exports"] == []

    def test_unchecked_export_fails_with_baseline_path(self, gate, tmp_path):
        """An export nobody gates fails, naming the baseline that would fix it."""
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        results.mkdir()
        baselines.mkdir()
        self._write(results / "BENCH_orphan.json", {"benchmark": "orphan"})
        report = gate.run(str(results), str(baselines))
        assert not report["ok"]
        assert report["unchecked_exports"] == ["orphan"]
        assert any("'orphan'" in problem and "orphan.json" in problem
                   for problem in report["problems"])
        relaxed = gate.run(str(results), str(baselines), allow_unchecked=True)
        assert relaxed["ok"]
        assert relaxed["unchecked_exports"] == ["orphan"]

    def test_baseline_without_benchmark_key_reported_by_path(self, gate, tmp_path):
        """A malformed baseline names its file instead of raising KeyError."""
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        results.mkdir()
        baselines.mkdir()
        self._write(baselines / "broken.json", {"rules": {"speedup": {"min": 5.0}}})
        report = gate.run(str(results), str(baselines))
        assert not report["ok"]
        assert any("broken.json" in problem and "benchmark" in problem
                   for problem in report["problems"])

    def test_missing_export_fails_unless_allowed(self, gate, tmp_path):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        results.mkdir()
        baselines.mkdir()
        self._write(baselines / "demo.json",
                    {"benchmark": "demo", "rules": {"speedup": {"min": 5.0}}})
        assert not gate.run(str(results), str(baselines))["ok"]
        assert gate.run(str(results), str(baselines), allow_missing=True)["ok"]

    def test_merged_artifact_baselines_covered_by_ci_benches(self, gate):
        """Every committed baseline names a benchmark CI actually exports.

        The CI perf-gate step fails when a baseline has no matching
        ``BENCH_*.json``, so each baseline must correspond to a benchmark
        module run in the bench-smoke job (bench_<name>.py exists).
        """
        bench_dir = os.path.dirname(_GATE_PATH)
        for name in sorted(os.listdir(gate.DEFAULT_BASELINE_DIR)):
            with open(os.path.join(gate.DEFAULT_BASELINE_DIR, name),
                      encoding="utf-8") as handle:
                benchmark = json.load(handle)["benchmark"]
            module = os.path.join(bench_dir, f"bench_{benchmark}.py")
            assert os.path.exists(module), (
                f"baseline {name} gates {benchmark!r} but {module} does not exist"
            )

    def test_committed_baselines_are_well_formed(self, gate):
        """Every committed baseline parses and contains only enforceable rules."""
        baseline_dir = gate.DEFAULT_BASELINE_DIR
        names = sorted(os.listdir(baseline_dir))
        assert names, "no committed baselines found"
        for name in names:
            with open(os.path.join(baseline_dir, name), encoding="utf-8") as handle:
                baseline = json.load(handle)
            assert baseline["rules"], f"{name}: baseline without rules"
            for field, rule in baseline["rules"].items():
                records = gate.check_rule({}, field, rule)
                # against an empty payload the only acceptable failure is the
                # missing-field record -- malformed rules fail differently
                assert all(record["check"] == "present" for record in records), (
                    f"{name}: rule for {field!r} is malformed: {records}"
                )


def _row_export(n_rows: int, **overrides) -> dict:
    """A rows-shaped export whose entries default to healthy values."""
    rows = [{"error": 1e-3, "order": 100, "extra": 5.0,
             "err_measurement": 1e-3} for _ in range(n_rows)]
    for path, value in overrides.items():
        index, field = path.split(".")
        rows[int(index)][field] = value
    return {"rows": rows}


class TestCommittedBaselineRules:
    """One unit test per committed rule file: a representative healthy export
    passes every rule, and a characteristic regression trips at least one."""

    def _load(self, gate, name):
        with open(os.path.join(gate.DEFAULT_BASELINE_DIR, name),
                  encoding="utf-8") as handle:
            return json.load(handle)

    def _verdict(self, gate, baseline, payload) -> bool:
        records = gate.check_export(payload, baseline)
        assert records, "baseline produced no checks"
        return all(record["ok"] for record in records)

    def test_table1_rules(self, gate):
        baseline = self._load(gate, "table1.json")
        healthy = _row_export(12, **{
            "0.err_measurement": 0.056, "1.err_measurement": 0.018,
            "2.err_measurement": 0.055, "5.err_measurement": 0.30,
            "6.err_measurement": 0.054, "7.err_measurement": 0.010,
            "8.err_measurement": 0.077, "11.err_measurement": 0.19,
            "1.order": 117,
        })
        healthy["batch"] = {"n_workers": 1}
        assert self._verdict(gate, baseline, healthy)
        regressed = dict(healthy)
        regressed["rows"] = [dict(row) for row in healthy["rows"]]
        regressed["rows"][1]["err_measurement"] = 0.5  # MFTI t=3 went bad
        assert not self._verdict(gate, baseline, regressed)

    def test_ablation_weighting_rules(self, gate):
        baseline = self._load(gate, "ablation_weighting.json")
        healthy = _row_export(6, **{"0.error": 0.27, "0.order": 64,
                                    "2.error": 0.016, "5.error": 0.0017,
                                    "5.order": 213})
        assert self._verdict(gate, baseline, healthy)
        regressed = _row_export(6, **{"0.error": 0.27, "0.order": 64,
                                      "2.error": 0.016, "5.error": 0.5,
                                      "5.order": 213})
        assert not self._verdict(gate, baseline, regressed)

    def test_ablation_svd_rules(self, gate):
        baseline = self._load(gate, "ablation_svd.json")
        healthy = _row_export(4, **{f"{i}.error": 1e-12 for i in range(4)},
                              **{"0.order": 96, "3.order": 96})
        assert self._verdict(gate, baseline, healthy)
        regressed = _row_export(4, **{f"{i}.error": 1e-12 for i in (0, 1, 3)},
                                **{"0.order": 96, "3.order": 96, "2.error": 1e-3})
        assert not self._verdict(gate, baseline, regressed)

    def test_ablation_recursive_rules(self, gate):
        baseline = self._load(gate, "ablation_recursive.json")
        healthy = _row_export(9, **{"2.error": 0.033, "2.extra": 8.0,
                                    "5.error": 0.033, "8.error": 0.055})
        assert self._verdict(gate, baseline, healthy)
        # the refinement loop stopped iterating: accuracy gate must trip
        regressed = _row_export(9, **{"2.error": 0.033, "2.extra": 1.0,
                                      "5.error": 0.033, "8.error": 0.055})
        assert not self._verdict(gate, baseline, regressed)

    def test_shard_merge_rules(self, gate):
        baseline = self._load(gate, "shard_merge.json")
        healthy = {"n_jobs": 8, "n_diffs": 0, "json_equal": 1,
                   "merged_n_ok": 8, "merged_n_failed": 0,
                   "merged_cache_hits": 0, "merged_cache_misses": 8}
        assert self._verdict(gate, baseline, healthy)
        for field, bad in (("n_diffs", 2), ("json_equal", 0),
                           ("merged_cache_misses", 7), ("merged_n_failed", 1)):
            assert not self._verdict(gate, baseline, {**healthy, field: bad}), field

    def test_fit_cache_and_eval_kernel_rules_still_pass(self, gate):
        """The pre-existing baselines keep gating their healthy exports."""
        fit_cache = self._load(gate, "fit_cache.json")
        assert self._verdict(gate, fit_cache, {
            "n_jobs": 8, "speedup_warm_vs_cold": 40.0,
            "warm_cache_misses": 0, "warm_cache_hits": 8,
        })
        eval_kernel = self._load(gate, "eval_kernel.json")
        workload = {"speedup_cold": 15.0, "speedup_warm": 90.0,
                    "agreement_rel": 1e-9}
        assert self._verdict(gate, eval_kernel, {
            "workloads": {"pdn": dict(workload), "tline": dict(workload)},
        })
