"""Unit tests of the perf-regression gate's rule engine.

``benchmarks/check_perf_regression.py`` is a standalone CI script (the
``benchmarks`` directory is not a package), so it is loaded here by file
path.  These tests pin the rule semantics the committed baselines rely on
-- hard bounds, cross-field equality, tolerance bands in both directions --
and that malformed or vacuous rules fail loudly instead of passing as
"0/0 checks ok".
"""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

_GATE_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                          "benchmarks", "check_perf_regression.py")


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_perf_regression", _GATE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


PAYLOAD = {
    "benchmark": "demo",
    "n_jobs": 8,
    "hits": 8,
    "speedup": 12.0,
    "wall_seconds": 1.5,
    "workloads": {"pdn": {"speedup_cold": 10.0}},
}


class TestRules:
    def test_min_max_bounds(self, gate):
        ok = gate.check_rule(PAYLOAD, "speedup", {"min": 5.0, "max": 20.0})
        assert [record["ok"] for record in ok] == [True, True]
        bad = gate.check_rule(PAYLOAD, "speedup", {"min": 50.0})
        assert [record["ok"] for record in bad] == [False]

    def test_equals_field(self, gate):
        assert gate.check_rule(PAYLOAD, "hits", {"equals_field": "n_jobs"})[0]["ok"]
        assert not gate.check_rule(PAYLOAD, "speedup", {"equals_field": "n_jobs"})[0]["ok"]

    def test_tolerance_bands(self, gate):
        lower = gate.check_rule(PAYLOAD, "wall_seconds",
                                {"baseline": 1.0, "rtol": 1.0, "direction": "lower"})
        assert lower[0]["ok"]  # 1.5 <= 1.0 * 2
        higher = gate.check_rule(PAYLOAD, "speedup",
                                 {"baseline": 40.0, "rtol": 0.5, "direction": "higher"})
        assert not higher[0]["ok"]  # 12 < 40 * 0.5

    def test_dotted_paths(self, gate):
        record = gate.check_rule(PAYLOAD, "workloads.pdn.speedup_cold", {"min": 5.0})[0]
        assert record["ok"]
        missing = gate.check_rule(PAYLOAD, "workloads.tline.speedup_cold", {"min": 5.0})[0]
        assert not missing["ok"]

    def test_vacuous_rule_fails_loudly(self, gate):
        records = gate.check_rule(PAYLOAD, "speedup",
                                  {"rtol": 0.7, "direction": "higher"})
        assert [record["ok"] for record in records] == [False]
        records = gate.check_rule(PAYLOAD, "speedup", {"min": 5.0, "rtol": 0.7})
        assert [record["ok"] for record in records] == [False]

    def test_unknown_rule_keys_fail(self, gate):
        records = gate.check_rule(PAYLOAD, "speedup", {"minimum": 5.0})
        assert [record["ok"] for record in records] == [False]

    def test_non_numeric_field_fails(self, gate):
        records = gate.check_rule(PAYLOAD, "benchmark", {"min": 1.0})
        assert [record["ok"] for record in records] == [False]


class TestRun:
    def _write(self, path, document):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)

    def test_directory_run_reports_and_gates(self, gate, tmp_path):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        results.mkdir()
        baselines.mkdir()
        self._write(results / "BENCH_demo.json", PAYLOAD)
        self._write(results / "BENCH_orphan.json", {"benchmark": "orphan"})
        self._write(baselines / "demo.json",
                    {"benchmark": "demo", "rules": {"speedup": {"min": 5.0}}})
        report = gate.run(str(results), str(baselines))
        assert report["ok"]
        assert report["unchecked_exports"] == ["orphan"]

    def test_missing_export_fails_unless_allowed(self, gate, tmp_path):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        results.mkdir()
        baselines.mkdir()
        self._write(baselines / "demo.json",
                    {"benchmark": "demo", "rules": {"speedup": {"min": 5.0}}})
        assert not gate.run(str(results), str(baselines))["ok"]
        assert gate.run(str(results), str(baselines), allow_missing=True)["ok"]

    def test_committed_baselines_are_well_formed(self, gate):
        """Every committed baseline parses and contains only enforceable rules."""
        baseline_dir = gate.DEFAULT_BASELINE_DIR
        names = sorted(os.listdir(baseline_dir))
        assert names, "no committed baselines found"
        for name in names:
            with open(os.path.join(baseline_dir, name), encoding="utf-8") as handle:
                baseline = json.load(handle)
            assert baseline["rules"], f"{name}: baseline without rules"
            for field, rule in baseline["rules"].items():
                records = gate.check_rule({}, field, rule)
                # against an empty payload the only acceptable failure is the
                # missing-field record -- malformed rules fail differently
                assert all(record["check"] == "present" for record in records), (
                    f"{name}: rule for {field!r} is malformed: {records}"
                )
