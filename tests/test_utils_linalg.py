"""Tests for :mod:`repro.utils.linalg`."""

import numpy as np
import pytest

from repro.utils.linalg import (
    block_diag,
    economic_svd,
    hermitian_part,
    is_effectively_real,
    numerical_rank,
    rank_from_gap,
    relative_residual,
    singular_value_gaps,
    solve_sylvester_diag,
    truncated_svd_projectors,
)


class TestBlockDiag:
    def test_two_blocks(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([[5.0]])
        out = block_diag([a, b])
        assert out.shape == (3, 3)
        assert np.allclose(out[:2, :2], a)
        assert out[2, 2] == 5.0
        assert np.allclose(out[:2, 2], 0.0)

    def test_rectangular_blocks(self):
        out = block_diag([np.ones((2, 3)), np.ones((1, 2))])
        assert out.shape == (3, 5)

    def test_complex_dtype_preserved(self):
        out = block_diag([np.eye(2), 1j * np.eye(2)])
        assert np.iscomplexobj(out)

    def test_empty_sequence(self):
        out = block_diag([])
        assert out.shape == (0, 0)

    def test_one_dimensional_block_treated_as_row(self):
        out = block_diag([np.array([1.0, 2.0])])
        assert out.shape == (1, 2)


class TestEconomicSvd:
    def test_reconstruction(self, rng):
        matrix = rng.normal(size=(6, 4))
        u, s, vh = economic_svd(matrix)
        assert np.allclose(u @ np.diag(s) @ vh, matrix)

    def test_sorted_descending(self, rng):
        matrix = rng.normal(size=(5, 5))
        _, s, _ = economic_svd(matrix)
        assert np.all(np.diff(s) <= 1e-12)


class TestRankDetection:
    def test_numerical_rank_exact(self):
        s = np.array([1.0, 0.5, 1e-14])
        assert numerical_rank(s, rtol=1e-10) == 2

    def test_numerical_rank_empty(self):
        assert numerical_rank(np.array([])) == 0

    def test_gap_detection(self):
        s = np.array([10.0, 5.0, 2.0, 1e-10, 1e-11])
        assert rank_from_gap(s) == 3

    def test_gap_detection_no_gap_returns_full(self):
        s = np.array([4.0, 3.0, 2.0, 1.0])
        assert rank_from_gap(s) == 4

    def test_singular_value_gaps(self):
        s = np.array([8.0, 4.0, 1.0])
        gaps = singular_value_gaps(s)
        assert np.allclose(gaps, [2.0, 4.0])

    def test_singular_value_gaps_requires_1d(self):
        with pytest.raises(ValueError):
            singular_value_gaps(np.eye(2))

    def test_truncated_projectors_shapes(self, rng):
        matrix = rng.normal(size=(7, 5))
        y, s, x = truncated_svd_projectors(matrix, 3)
        assert y.shape == (7, 3)
        assert x.shape == (5, 3)
        assert s.shape == (3,)
        assert np.allclose(y.conj().T @ y, np.eye(3), atol=1e-12)

    def test_truncated_projectors_rank_out_of_range(self, rng):
        with pytest.raises(ValueError):
            truncated_svd_projectors(rng.normal(size=(3, 3)), 5)


class TestSylvesterDiag:
    def test_solution_satisfies_equation(self, rng):
        mu = rng.normal(size=4) + 1j * rng.normal(size=4)
        lam = rng.normal(size=3) + 1j * rng.normal(size=3) + 10.0
        rhs = rng.normal(size=(4, 3)) + 1j * rng.normal(size=(4, 3))
        x = solve_sylvester_diag(mu, lam, rhs)
        lhs = x @ np.diag(lam) - np.diag(mu) @ x
        assert np.allclose(lhs, rhs)

    def test_coincident_points_rejected(self):
        with pytest.raises(ValueError, match="disjoint"):
            solve_sylvester_diag([1.0], [1.0], [[1.0]])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            solve_sylvester_diag([1.0, 2.0], [3.0], np.ones((1, 1)))


class TestMiscHelpers:
    def test_relative_residual_zero_for_equal(self):
        a = np.arange(6.0).reshape(2, 3)
        assert relative_residual(a, a) == 0.0

    def test_relative_residual_absolute_fallback(self):
        assert relative_residual(np.ones((2, 2)), np.zeros((2, 2))) == pytest.approx(2.0)

    def test_hermitian_part(self):
        m = np.array([[1.0, 2.0 + 1j], [0.0, 3.0]])
        h = hermitian_part(m)
        assert np.allclose(h, h.conj().T)

    def test_is_effectively_real_true(self):
        assert is_effectively_real(np.ones((2, 2)) + 1e-12j)

    def test_is_effectively_real_false(self):
        assert not is_effectively_real(np.ones((2, 2)) + 0.1j)

    def test_is_effectively_real_zero_matrix(self):
        assert is_effectively_real(np.zeros((2, 2), dtype=complex))
