"""Tests for macromodel persistence (:mod:`repro.data.model_io`)."""

import numpy as np
import pytest

from repro.core import mfti
from repro.data.model_io import load_model, save_model
from repro.systems.statespace import DescriptorSystem


class TestModelIo:
    def test_roundtrip_descriptor_system(self, tmp_path, small_system):
        path = save_model(small_system, tmp_path / "model")
        assert path.endswith(".npz")
        loaded = load_model(path)
        assert isinstance(loaded, DescriptorSystem)
        for name in ("E", "A", "B", "C", "D"):
            assert np.allclose(getattr(loaded, name), getattr(small_system, name))

    def test_roundtrip_preserves_transfer_function(self, tmp_path, small_system):
        path = save_model(small_system, tmp_path / "model.npz")
        loaded = load_model(path)
        s = 1j * 2 * np.pi * 1234.0
        assert np.allclose(loaded.transfer_function(s), small_system.transfer_function(s))

    def test_macromodel_result_accepted(self, tmp_path, small_data, dense_data):
        result = mfti(small_data)
        path = save_model(result, tmp_path / "mfti_model", label="example")
        loaded = load_model(path)
        assert loaded.order == result.order
        response = loaded.frequency_response(dense_data.frequencies_hz)
        assert np.allclose(response, result.frequency_response(dense_data.frequencies_hz))

    def test_invalid_model_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_model("not a system", tmp_path / "x")

    def test_corrupt_archive_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, E=np.eye(2), A=-np.eye(2))  # missing B, C, D
        with pytest.raises(ValueError, match="missing"):
            load_model(path)

    def test_future_format_rejected(self, tmp_path, small_system):
        path = save_model(small_system, tmp_path / "model")
        data = dict(np.load(path))
        data["format_version"] = np.asarray(99)
        np.savez(path, **data)
        with pytest.raises(ValueError, match="format version"):
            load_model(path)
