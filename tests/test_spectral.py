"""Tests for the batched spectral time-domain pathway and its metrics.

Three layers, mirroring the module's contract:

* **unit tests** -- grid construction, analytic impulse/step responses of a
  known pole, feed-through handling, batching, gridding edge cases;
* **differential tests** -- the FFT pathway against the trapezoidal
  integrator (:mod:`repro.systems.timedomain`) under grid refinement: the
  two independent discretisations must converge to each other;
* **hypothesis properties** -- Parseval energy consistency of the raw
  transform, gridded-vs-exact evaluation at non-uniform samples, and
  FFT-vs-integrator agreement over randomly drawn stable systems;

plus the golden-fixture regression (``tests/golden/golden_timedomain.json``,
regenerable with ``python tests/test_spectral.py --regenerate``).
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import FrequencyData
from repro.metrics.timedomain import (
    TIME_DOMAIN_METRIC_KEYS,
    TimeDomainSpec,
    delay_estimate,
    impulse_error_norms,
    ringing_ratio,
    time_domain_metrics,
)
from repro.systems.random_systems import random_stable_system
from repro.systems.spectral import (
    build_spectral_grid,
    batch_time_responses,
    evaluate_spectrum,
    grid_nonuniform_spectrum,
    impulse_energy,
    impulse_from_spectrum,
    spectral_energy,
    spectral_impulse_response,
    spectral_step_response,
    spectral_window,
    step_from_impulse,
)
from repro.systems.statespace import StateSpace
from repro.systems.timedomain import impulse_response, step_response

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "golden_timedomain.json")

#: The documented FFT-vs-integrator tolerance band (see README "Time domain"):
#: with the grid's Nyquist rate ten times the system band, step responses of
#: the two pathways agree within this fraction of the step scale -- the
#: difference is dominated by the trapezoidal integrator's accumulated phase
#: error at resonances, so it keeps shrinking as the grid refines (the
#: convergence half of the contract, asserted separately).
STEP_AGREEMENT_BAND = 5e-2
#: Minimum factor the FFT-vs-integrator difference must shrink by when the
#: time step is refined 4x.
REFINEMENT_GAIN = 1.8


def _banded_system(order, n_ports, seed):
    """Stable draw whose dynamics fit the differential-test grids: band
    1 kHz - 100 kHz (so a dt of 5e-7 s puts Nyquist at 10x the band top) and
    damping >= 0.1 (so tails decay inside the 8x periodization window)."""
    return random_stable_system(order=order, n_ports=n_ports, feedthrough=0.1,
                                freq_min_hz=1e3, freq_max_hz=1e5,
                                damping_min=0.1, seed=seed)


@pytest.fixture
def lowpass():
    """H(s) = 1 / (s + 1): impulse exp(-t), step 1 - exp(-t)."""
    return StateSpace([[-1.0]], [[1.0]], [[1.0]])


# --------------------------------------------------------------------------- #
# grids
# --------------------------------------------------------------------------- #
class TestSpectralGrid:
    def test_grid_shapes_and_scales(self):
        grid = build_spectral_grid(1.0, 101, oversample=4)
        assert grid.n_points == 101
        assert grid.time[0] == 0.0 and grid.time[-1] == pytest.approx(1.0)
        assert grid.dt == pytest.approx(1.0 / 100)
        # next power of two above oversample * n_points
        assert grid.n_fft == 512
        assert grid.frequencies_hz.size == grid.n_fft // 2 + 1
        # rfft grid runs from DC to Nyquist of the time step
        assert grid.frequencies_hz[0] == 0.0
        assert grid.frequencies_hz[-1] == pytest.approx(0.5 / grid.dt)
        assert grid.df == pytest.approx(1.0 / (grid.n_fft * grid.dt))

    @pytest.mark.parametrize("kwargs", [
        {"t_final": 0.0, "n_points": 10},
        {"t_final": -1.0, "n_points": 10},
        {"t_final": 1.0, "n_points": 1},
        {"t_final": 1.0, "n_points": 2.5},
        {"t_final": 1.0, "n_points": 10, "oversample": 0},
        {"t_final": 1.0, "n_points": 10, "oversample": 1.5},
    ])
    def test_invalid_grid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            build_spectral_grid(**kwargs)

    def test_window_validation(self):
        grid = build_spectral_grid(1.0, 16)
        assert np.all(spectral_window(grid, "none") == 1.0)
        lanczos = spectral_window(grid, "lanczos")
        assert lanczos[0] == pytest.approx(1.0)
        assert 0.0 <= lanczos[-1] < 0.01
        with pytest.raises(ValueError):
            spectral_window(grid, "hann")

    def test_spectrum_shape_validation(self):
        grid = build_spectral_grid(1.0, 16)
        with pytest.raises(ValueError):
            impulse_from_spectrum(np.zeros((7, 1, 1), dtype=complex), grid)


# --------------------------------------------------------------------------- #
# analytic responses
# --------------------------------------------------------------------------- #
class TestAnalyticResponses:
    def test_impulse_matches_exponential(self, lowpass):
        time, impulse = spectral_impulse_response(lowpass, t_final=5.0, n_points=501)
        expected = np.exp(-time)
        # the default Lanczos window smears the t = 0 jump over the first
        # couple of samples (its trade against Gibbs ringing); skip those
        assert np.max(np.abs(impulse[3:, 0, 0] - expected[3:])) < 5e-3

    def test_raw_transform_puts_half_jump_at_zero(self, lowpass):
        # without windowing, Fourier inversion converges to the jump
        # midpoint: the t = 0 sample carries h(0+) / 2
        _, impulse = spectral_impulse_response(lowpass, t_final=5.0,
                                               n_points=501, window="none")
        assert impulse[0, 0, 0] == pytest.approx(0.5, abs=5e-2)

    def test_step_matches_analytic_with_feedthrough(self):
        # H(s) = 0.7 + 3 / (s + 2): step 0.7 + 1.5 (1 - exp(-2 t))
        sys_ = StateSpace([[-2.0]], [[1.0]], [[3.0]], [[0.7]])
        time, step = spectral_step_response(sys_, t_final=4.0, n_points=401)
        expected = 0.7 + 1.5 * (1.0 - np.exp(-2.0 * time))
        assert step[0, 0, 0] == pytest.approx(0.7)  # instantaneous feed-through
        assert np.max(np.abs(step[:, 0, 0] - expected)) < 1e-2

    def test_oversampling_suppresses_wraparound(self, lowpass):
        # a horizon much shorter than the decay makes periodization visible
        # in the tail; the oversampled transform must beat the critically
        # sampled one there (raw transform: the window is a separate knob)
        def tail_error(oversample):
            time, impulse = spectral_impulse_response(
                lowpass, t_final=2.0, n_points=201, oversample=oversample,
                window="none")
            tail = time > 1.0
            return np.max(np.abs(impulse[tail, 0, 0] - np.exp(-time[tail])))

        assert tail_error(8) < 0.1 * tail_error(1)

    def test_batch_matches_single_model_path(self):
        systems = [random_stable_system(order=8, n_ports=2, seed=seed)
                   for seed in (1, 2, 3)]
        grid = build_spectral_grid(1e-4, 64)
        impulse, step = batch_time_responses(systems, grid)
        assert impulse.shape == (3, 64, 2, 2)
        assert step.shape == (3, 64, 2, 2)
        for k, system in enumerate(systems):
            _, single_imp = spectral_impulse_response(system, 1e-4, 64)
            _, single_step = spectral_step_response(system, 1e-4, 64)
            np.testing.assert_array_equal(impulse[k], single_imp)
            np.testing.assert_array_equal(step[k], single_step)

    def test_batch_validation(self):
        grid = build_spectral_grid(1.0, 16)
        with pytest.raises(ValueError):
            batch_time_responses([], grid)
        mixed = [random_stable_system(order=4, n_ports=1, seed=0),
                 random_stable_system(order=4, n_ports=2, seed=0)]
        with pytest.raises(ValueError):
            batch_time_responses(mixed, grid)


# --------------------------------------------------------------------------- #
# differential: FFT pathway vs trapezoidal integrator under refinement
# --------------------------------------------------------------------------- #
class TestAgainstIntegrator:
    @staticmethod
    def _step_difference(system, n_points, t_final=2e-3):
        _, integrated = step_response(system, t_final=t_final, n_points=n_points)
        _, spectral = spectral_step_response(system, t_final=t_final,
                                             n_points=n_points)
        return float(np.max(np.abs(spectral[:, :, 0] - integrated)))

    def test_step_agreement_tightens_under_refinement(self, lowpass):
        coarse = self._step_difference(lowpass, 101, t_final=5.0)
        fine = self._step_difference(lowpass, 801, t_final=5.0)
        assert fine < coarse
        assert fine < 5e-3

    def test_impulse_agreement_on_fine_grid(self, lowpass):
        time, integrated = impulse_response(lowpass, t_final=5.0, n_points=2001)
        _, spectral = spectral_impulse_response(lowpass, t_final=5.0, n_points=2001)
        peak = float(np.max(np.abs(integrated)))
        # both discretisations approximate the t = 0 jump differently
        # (discrete pulse vs half-jump); compare away from it
        diff = np.max(np.abs(spectral[5:, :, 0] - integrated[5:]))
        assert diff < 2e-2 * peak

    def test_resonant_difference_converges_under_refinement(self):
        """A lightly damped band-limited system: integrator phase error
        dominates the pathway difference and must shrink under refinement."""
        system = _banded_system(order=10, n_ports=2, seed=777)
        coarse = self._step_difference(system, 2001)
        fine = self._step_difference(system, 8001)
        assert fine * REFINEMENT_GAIN < coarse
        assert fine < STEP_AGREEMENT_BAND

    def test_mimo_step_agreement(self):
        system = _banded_system(order=20, n_ports=4, seed=3)
        t_final, n_points = 2e-3, 4001
        _, spectral = spectral_step_response(system, t_final, n_points)
        scale = max(float(np.max(np.abs(spectral))), 1.0)
        for input_index in range(system.n_inputs):
            _, integrated = step_response(system, t_final, n_points,
                                          input_index=input_index)
            diff = float(np.max(np.abs(spectral[:, :, input_index] - integrated)))
            assert diff < STEP_AGREEMENT_BAND * scale


# --------------------------------------------------------------------------- #
# NUFFT-style gridding
# --------------------------------------------------------------------------- #
class TestGridding:
    def test_gridding_matches_exact_evaluation_in_band(self, small_system):
        grid = build_spectral_grid(2e-4, 128)
        exact = evaluate_spectrum(small_system, grid)
        # dense non-uniform (log-spaced) samples covering the whole rfft band
        freqs = np.logspace(np.log10(grid.frequencies_hz[1] / 2),
                            np.log10(grid.frequencies_hz[-1]), 600)
        samples = small_system.frequency_response(freqs)
        gridded = grid_nonuniform_spectrum(freqs, samples, grid,
                                           feedthrough=small_system.D,
                                           taper_fraction=0.0)
        scale = float(np.max(np.abs(exact)))
        assert np.max(np.abs(gridded[1:] - exact[1:])) < 2e-2 * scale

    def test_grid_points_on_samples_are_exact(self, small_system):
        # sampling AT a subset of the rfft grid makes the linear kernel an
        # interpolation through the nodes: those grid points come back exact
        grid = build_spectral_grid(1e-4, 64)
        taken = grid.frequencies_hz[1::3]
        samples = small_system.frequency_response(taken)
        gridded = grid_nonuniform_spectrum(taken, samples, grid,
                                           feedthrough=small_system.D,
                                           taper_fraction=0.0)
        exact = evaluate_spectrum(small_system, grid)
        np.testing.assert_allclose(gridded[1::3], exact[1::3], rtol=1e-9, atol=1e-12)

    def test_unsorted_samples_are_sorted(self, lowpass):
        grid = build_spectral_grid(1.0, 32)
        freqs = np.linspace(0.01, grid.frequencies_hz[-1], 50)
        samples = lowpass.frequency_response(freqs)
        rng = np.random.default_rng(0)
        order = rng.permutation(freqs.size)
        shuffled = grid_nonuniform_spectrum(freqs[order], samples[order], grid)
        sorted_ = grid_nonuniform_spectrum(freqs, samples, grid)
        np.testing.assert_array_equal(shuffled, sorted_)

    def test_taper_rolls_band_edge_to_zero(self, lowpass):
        grid = build_spectral_grid(1.0, 32)
        f_hi = grid.frequencies_hz[-1] / 2
        freqs = np.linspace(0.01, f_hi, 40)
        samples = np.ones((40, 1, 1), dtype=complex)
        gridded = grid_nonuniform_spectrum(freqs, samples, grid, taper_fraction=0.2)
        band = grid.frequencies_hz <= f_hi
        # the last in-band grid point sits at the very band edge: tapered ~ 0
        assert abs(gridded[band][-1, 0, 0]) < abs(gridded[band][0, 0, 0]) * 0.2
        # everything above the band is exactly zero
        assert np.all(gridded[~band] == 0.0)

    def test_gridding_validation(self):
        grid = build_spectral_grid(1.0, 16)
        with pytest.raises(ValueError):
            grid_nonuniform_spectrum([1.0], np.ones((1, 1, 1)), grid)
        with pytest.raises(ValueError):
            grid_nonuniform_spectrum([1.0, 1.0], np.ones((2, 1, 1)), grid)
        with pytest.raises(ValueError):
            grid_nonuniform_spectrum([1.0, 2.0], np.ones((2, 1, 1)), grid,
                                     taper_fraction=1.0)
        with pytest.raises(ValueError):
            grid_nonuniform_spectrum([1.0, 2.0], np.ones((3, 1, 1)), grid)


# --------------------------------------------------------------------------- #
# time-domain metrics
# --------------------------------------------------------------------------- #
class TestTimeDomainMetrics:
    def test_self_comparison_is_zero_error(self, small_system):
        freqs = np.logspace(2, 6, 120)
        data = FrequencyData(freqs, small_system.frequency_response(freqs))
        metrics = time_domain_metrics(small_system, data,
                                      TimeDomainSpec(t_final=2e-4, n_points=96))
        assert set(metrics) == set(TIME_DOMAIN_METRIC_KEYS)
        assert metrics["impulse_l2"] == 0.0
        assert metrics["impulse_linf"] == 0.0
        assert metrics["step_l2"] == 0.0
        assert metrics["delay_error_seconds"] == 0.0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TimeDomainSpec(t_final=0.0)
        with pytest.raises(ValueError):
            TimeDomainSpec(t_final=1.0, n_points=1)
        with pytest.raises(ValueError):
            TimeDomainSpec(t_final=1.0, oversample=0)
        with pytest.raises(ValueError):
            TimeDomainSpec(t_final=1.0, taper_fraction=1.0)

    def test_spec_canonical_items_are_stable(self):
        spec = TimeDomainSpec(t_final=0.5, n_points=64)
        items = spec.canonical_items()
        assert items == TimeDomainSpec(**spec.to_dict()).canonical_items()
        assert [key for key, _ in items] == sorted(spec.to_dict())

    def test_error_norms_shape_mismatch(self):
        with pytest.raises(ValueError):
            impulse_error_norms(np.zeros((4, 1, 1)), np.zeros((5, 1, 1)))

    def test_delay_estimate_sees_transport_delay(self):
        time = np.linspace(0.0, 1.0, 101)
        early = np.zeros((101, 1, 1))
        early[1] = 1.0
        late = np.zeros((101, 1, 1))
        late[60] = 1.0
        assert delay_estimate(time, early) < 0.05
        assert delay_estimate(time, late) == pytest.approx(0.6)
        assert delay_estimate(time, np.zeros((101, 1, 1))) == 0.0

    def test_ringing_ratio_flags_oscillating_tail(self):
        time = np.linspace(0.0, 1.0, 200)
        settled = np.ones((200, 1, 1))
        ringing = 1.0 + 0.3 * np.sin(40 * np.pi * time)[:, None, None]
        assert ringing_ratio(settled) == 0.0
        assert ringing_ratio(ringing) > 0.1


# --------------------------------------------------------------------------- #
# hypothesis properties
# --------------------------------------------------------------------------- #
class TestProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), order=st.integers(2, 16))
    def test_parseval_energy_consistency(self, seed, order):
        """Raw (unwindowed) transform: frequency and time energies agree."""
        system = random_stable_system(order=order, n_ports=2, seed=seed)
        grid = build_spectral_grid(1e-4, 64)
        spectrum = evaluate_spectrum(system, grid)
        time_energy = impulse_energy(
            impulse_from_spectrum(spectrum, grid, crop=False), grid)
        freq_energy = spectral_energy(spectrum, grid)
        np.testing.assert_allclose(time_energy, freq_energy, rtol=1e-10, atol=1e-30)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_fft_integrator_agreement_random_systems(self, seed):
        """Pathway difference: inside the band at 4001 points, and shrinking
        under refinement, over randomly drawn band-limited stable systems."""
        system = _banded_system(order=10, n_ports=2, seed=seed)
        coarse = TestAgainstIntegrator._step_difference(system, 2001)
        fine = TestAgainstIntegrator._step_difference(system, 8001)
        assert fine * REFINEMENT_GAIN < coarse
        assert fine < STEP_AGREEMENT_BAND

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), stride=st.integers(2, 5))
    def test_gridded_vs_exact_at_node_frequencies(self, seed, stride):
        """Sampling at rfft nodes makes the linear gridding kernel exact there."""
        system = random_stable_system(order=6, n_ports=1, seed=seed)
        grid = build_spectral_grid(1e-4, 64)
        taken = grid.frequencies_hz[1::stride]
        samples = system.frequency_response(taken)
        gridded = grid_nonuniform_spectrum(taken, samples, grid,
                                           feedthrough=system.D,
                                           taper_fraction=0.0)
        exact = evaluate_spectrum(system, grid)
        np.testing.assert_allclose(gridded[1::stride], exact[1::stride],
                                   rtol=1e-9, atol=1e-12)


# --------------------------------------------------------------------------- #
# golden regression
# --------------------------------------------------------------------------- #
GOLDEN_RTOL = 1e-6


def _golden_cases():
    """Deterministic (system, spec) cases pinned by the golden fixture."""
    cases = {}
    for name, seed, order in (("siso-6", 11, 6), ("mimo-10", 23, 10)):
        n_ports = 1 if name.startswith("siso") else 2
        system = random_stable_system(order=order, n_ports=n_ports,
                                      feedthrough=0.1, seed=seed)
        cases[name] = system
    return cases


def _golden_payload():
    payload = {}
    for name, system in _golden_cases().items():
        t_final, n_points = 2e-4, 48
        time, impulse = spectral_impulse_response(system, t_final, n_points)
        _, step = spectral_step_response(system, t_final, n_points)
        freqs = np.logspace(2, 6, 80)
        data = FrequencyData(freqs, system.frequency_response(freqs))
        metrics = time_domain_metrics(
            system, data, TimeDomainSpec(t_final=t_final, n_points=n_points))
        payload[name] = {
            "impulse_00": impulse[:, 0, 0].tolist(),
            "step_00": step[:, 0, 0].tolist(),
            "metrics": metrics,
        }
    return payload


class TestGoldenTimedomain:
    def test_against_golden_fixture(self):
        if not os.path.exists(GOLDEN_PATH):
            pytest.fail(
                f"golden fixture missing; run: python {os.path.relpath(__file__)} "
                "--regenerate"
            )
        with open(GOLDEN_PATH, encoding="utf-8") as handle:
            golden = json.load(handle)
        payload = _golden_payload()
        assert set(payload) == set(golden)
        for name, expected in golden.items():
            actual = payload[name]
            np.testing.assert_allclose(actual["impulse_00"], expected["impulse_00"],
                                       rtol=GOLDEN_RTOL, atol=1e-12)
            np.testing.assert_allclose(actual["step_00"], expected["step_00"],
                                       rtol=GOLDEN_RTOL, atol=1e-12)
            for key in TIME_DOMAIN_METRIC_KEYS:
                assert actual["metrics"][key] == pytest.approx(
                    expected["metrics"][key], rel=1e-4, abs=1e-12)


def regenerate():
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(_golden_payload(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print("usage: python tests/test_spectral.py --regenerate")
