"""Tests for the experiment drivers (scaled-down versions of the paper settings)."""

import numpy as np
import pytest

from repro.circuits.pdn import PdnConfiguration
from repro.core.options import RecursiveOptions
from repro.data import sample_scattering
from repro.experiments.ablations import (
    recursive_parameter_ablation,
    svd_mode_ablation,
    weighting_ablation,
)
from repro.experiments.example1 import (
    Example1Config,
    bode_experiment,
    sample_requirement_sweep,
    singular_value_experiment,
)
from repro.experiments.example2 import Example2Config, build_pdn_datasets, table1_experiment
from repro.experiments.minimal_sampling import minimal_sampling_experiment
from repro.experiments.reporting import format_series, format_table


@pytest.fixture(scope="module")
def small_example1():
    """Scaled-down Example-1 configuration (order 40, 8 ports, 8 samples)."""
    return Example1Config(order=40, n_ports=8, n_samples=8, seed=99)


class TestExample1:
    def test_figure1_shape_matches_paper(self, small_example1):
        """MFTI shows a sharp drop at order + rank(D); VFTI does not (Fig. 1)."""
        fig1 = singular_value_experiment(small_example1)
        assert fig1.mfti_detected_order == fig1.true_order_with_feedthrough
        assert fig1.mfti_drop_ratio() > 1e6
        assert fig1.vfti_drop_ratio() < 1e4
        assert fig1.vfti_detected_order < fig1.true_order

    def test_figure2_mfti_fits_vfti_does_not(self, small_example1):
        """The Bode comparison of Fig. 2: MFTI matches the original, VFTI fails."""
        fig2 = bode_experiment(small_example1, n_validation=40)
        assert fig2.mfti_error < 1e-6
        assert fig2.vfti_error > 1e-2
        assert fig2.frequencies_hz.shape == (40,)
        assert fig2.original_magnitude.shape == (40,)
        assert np.allclose(fig2.mfti_magnitude, fig2.original_magnitude, rtol=1e-3)

    def test_sample_requirement_sweep(self):
        """MFTI needs roughly 1/p of the samples VFTI needs (Theorem 3.5)."""
        config = Example1Config(order=24, n_ports=6, seed=5)
        results = sample_requirement_sweep(
            config,
            tolerance=1e-5,
            mfti_counts=[4, 6, 8],
            vfti_counts=[10, 30, 64],
            n_validation=30,
        )
        assert results["mfti"].samples_needed is not None
        assert results["mfti"].samples_needed <= 8
        assert (results["vfti"].samples_needed is None
                or results["vfti"].samples_needed >= 4 * results["mfti"].samples_needed)


@pytest.fixture(scope="module")
def small_example2():
    """Scaled-down Example-2 configuration: 6-port PDN, 40 samples."""
    return Example2Config(
        pdn=PdnConfiguration(n_ports=6, grid_rows=4, grid_cols=5, n_decaps=5, n_bulk_caps=1),
        n_samples=40,
        f_min_hz=1e6,
        f_max_hz=2e9,
        noise_level=2e-4,
        vf_pole_counts=(30,),
        vf_iterations=3,
        rank_tolerance=2e-4,
        recursive=RecursiveOptions(block_size=2, samples_per_iteration=4, initial_samples=8,
                                   error_threshold=1e-2, rank_method="tolerance",
                                   rank_tolerance=2e-4),
        n_validation=60,
    )


class TestExample2:
    def test_datasets_have_requested_shape(self, small_example2):
        test1, test2, validation = build_pdn_datasets(small_example2)
        assert test1.n_samples == 40
        assert test2.n_samples == 40
        assert test1.n_ports == 6
        assert validation.n_samples == 60
        # test 2 is clustered towards the top of the band
        split = 1e6 + 0.7 * (2e9 - 1e6)
        assert np.count_nonzero(test2.frequencies_hz >= split) > np.count_nonzero(
            test1.frequencies_hz >= split)

    def test_table1_shape(self, small_example2):
        """MFTI beats VFTI on both tests; accuracy improves with the block size."""
        table = table1_experiment(small_example2, include_vector_fitting=False)
        assert len(table.rows) == 8  # 4 algorithms x 2 tests
        for test in ("test1", "test2"):
            rows = {row.algorithm: row for row in table.rows_for(test)}
            vfti_row = rows["VFTI"]
            t2_row = rows["MFTI-1 t=2"]
            t3_row = rows["MFTI-1 t=3"]
            recursive_row = rows["MFTI-2 (recursive)"]
            assert t3_row.error_vs_measurement < vfti_row.error_vs_measurement
            assert t3_row.error_vs_measurement <= t2_row.error_vs_measurement * 1.5
            assert recursive_row.error_vs_measurement < vfti_row.error_vs_measurement
            assert t3_row.reduced_order >= t2_row.reduced_order >= vfti_row.reduced_order
        assert table.best_error("test1").algorithm.startswith("MFTI")

    def test_table1_with_vector_fitting_row(self, small_example2):
        table = table1_experiment(small_example2, include_vector_fitting=True)
        vf_rows = [row for row in table.rows if row.algorithm.startswith("VF ")]
        assert len(vf_rows) == 2  # one pole count x 2 tests
        for row in vf_rows:
            assert row.reduced_order == 30
            assert row.time_seconds > 0
            assert np.isfinite(row.error_vs_measurement)
            assert np.isfinite(row.error_vs_truth)


class TestMinimalSamplingExperiment:
    def test_theorem_predictions_hold(self):
        result = minimal_sampling_experiment(order=24, n_ports=6, seed=3, tolerance=1e-5,
                                             n_validation=30)
        assert result.feedthrough_rank == 6
        assert result.predicted_mfti_samples >= 5
        assert result.mfti_samples_needed is not None
        assert result.mfti_samples_needed <= result.predicted_mfti_samples + 2
        # VFTI needs at least order(Gamma) samples
        assert (result.vfti_samples_needed is None
                or result.vfti_samples_needed >= result.system_order)
        assert result.saving_factor > 2.0
        # the singular-value drops confirm rank(L) ~ order and rank(sL) ~ order + rank(D)
        assert abs(result.loewner_rank - result.system_order) <= result.feedthrough_rank
        assert abs(result.pencil_rank - (result.system_order + result.feedthrough_rank)) <= 2


@pytest.fixture(scope="module")
def ablation_workload():
    from repro.systems.random_systems import random_stable_system
    from repro.data import add_measurement_noise, log_frequencies

    system = random_stable_system(order=16, n_ports=4, feedthrough=0.1, seed=41)
    data = sample_scattering(system, log_frequencies(1e2, 1e6, 24))
    noisy = add_measurement_noise(data, relative_level=1e-4, seed=2)
    reference = sample_scattering(system, log_frequencies(1e2, 1e6, 50))
    return noisy, reference


class TestAblations:
    def test_weighting_ablation_monotone_trend(self, ablation_workload):
        noisy, reference = ablation_workload
        rows = weighting_ablation(noisy, reference, block_sizes=[1, 2, 4], rank_tolerance=1e-4)
        assert [row.setting for row in rows] == ["t=1", "t=2", "t=4"]
        assert rows[-1].error <= rows[0].error
        assert rows[-1].order >= rows[0].order

    def test_svd_mode_ablation_rows(self, ablation_workload):
        noisy, reference = ablation_workload
        rows = svd_mode_ablation(noisy, reference, block_size=2, rank_tolerance=1e-4)
        assert len(rows) == 4
        assert rows[0].setting.startswith("two-sided")
        assert all(np.isfinite(row.error) for row in rows)

    def test_recursive_ablation_grid(self, ablation_workload):
        noisy, reference = ablation_workload
        rows = recursive_parameter_ablation(noisy, reference,
                                            samples_per_iteration=(2, 4),
                                            thresholds=(1e-1, 1e-3),
                                            rank_tolerance=1e-4)
        assert len(rows) == 4
        assert all(row.extra >= 1 for row in rows)


class TestMonteCarloJobs:
    """The seeded Monte-Carlo noise-study grid (cache-friendly by construction)."""

    #: Tiny study: 2 draws x 1 method over a small PDN, fast enough for tier 1.
    KWARGS = dict(n_draws=2, methods=("mfti",), pdn_samples=24, pdn_validation=30,
                  grid_rows=4, grid_cols=4)

    def test_grid_shape_and_tags(self):
        from repro.experiments.workloads import monte_carlo_jobs

        jobs = monte_carlo_jobs(**self.KWARGS)
        assert len(jobs) == 2
        for draw, job in enumerate(jobs):
            assert job.tags["study"] == "monte-carlo"
            assert job.tags["draw"] == draw
            assert job.tags["seed"] == 1000 + draw
            assert job.reference is not None

    def test_draws_share_fingerprints_across_rebuilds(self):
        """Seeded draws are content-deterministic: rebuilding the grid yields
        identical dataset fingerprints (the property that makes the study
        dedupe through the fit cache), while distinct draws differ."""
        from repro.cache import dataset_fingerprint
        from repro.experiments.workloads import monte_carlo_jobs

        first = [dataset_fingerprint(job.data) for job in monte_carlo_jobs(**self.KWARGS)]
        second = [dataset_fingerprint(job.data) for job in monte_carlo_jobs(**self.KWARGS)]
        assert first == second
        assert len(set(first)) == len(first)  # independent noise per draw

    def test_rerun_replays_from_cache(self):
        from repro.batch import BatchEngine
        from repro.cache import FitCache
        from repro.experiments.workloads import monte_carlo_jobs

        cache = FitCache()
        engine = BatchEngine(cache=cache)
        cold = engine.run(monte_carlo_jobs(**self.KWARGS))
        assert cold.n_failed == 0, cold.failures
        assert cold.n_cache_misses == cold.n_jobs
        warm = engine.run(monte_carlo_jobs(**self.KWARGS))  # rebuilt grid, same content
        assert warm.n_cache_hits == warm.n_jobs

    def test_validates_arguments(self):
        from repro.experiments.workloads import monte_carlo_jobs

        with pytest.raises(ValueError):
            monte_carlo_jobs(n_draws=0)
        with pytest.raises(ValueError):
            monte_carlo_jobs(methods=())
        with pytest.raises(ValueError):
            monte_carlo_jobs(**{**self.KWARGS, "methods": ("no-such-method",)})


class TestPortSweepJobs:
    """The port-sweep named grid (vary n_ports / direction counts)."""

    #: Tiny sweep: 2 port counts x (vfti + 2 mfti + full) = 8 cheap jobs.
    KWARGS = dict(port_counts=(2, 4), block_sizes=(1, 2), order=12,
                  n_samples=16, n_validation=24)

    def test_grid_shape_and_tags(self):
        from repro.experiments.workloads import port_sweep_jobs

        jobs = port_sweep_jobs(**self.KWARGS)
        assert len(jobs) == 8  # per port count: vfti + t=1 + t=2 + full
        by_ports = {}
        for job in jobs:
            assert job.tags["study"] == "port-sweep"
            assert job.reference is not None
            by_ports.setdefault(job.tags["n_ports"], []).append(job)
        assert sorted(by_ports) == [2, 4]
        for n_ports, members in by_ports.items():
            directions = [job.tags["directions"] for job in members]
            assert directions == [1, 1, 2, "full"]
            # every job of one port count shares one (noisy) dataset
            assert len({job.data.fingerprint() for job in members}) == 1

    def test_block_sizes_clamped_and_deduplicated(self):
        from repro.experiments.workloads import port_sweep_jobs

        jobs = port_sweep_jobs(**{**self.KWARGS, "port_counts": (2,),
                                  "block_sizes": (1, 2, 3, 8)})
        labels = [job.label for job in jobs]
        # t=3 and t=8 clamp to the 2-port limit and collapse into t=2
        assert labels == ["ports2/vfti", "ports2/mfti-t1", "ports2/mfti-t2",
                         "ports2/mfti-full"]

    def test_deterministic_across_rebuilds(self):
        """Seeded system + noise: rebuilt grids are content-identical, and
        distinct port counts draw distinct systems -- the properties that
        make the grid shardable and cache-stable."""
        from repro.batch import ShardPlan
        from repro.cache import dataset_fingerprint
        from repro.experiments.workloads import port_sweep_jobs

        first = [dataset_fingerprint(job.data) for job in port_sweep_jobs(**self.KWARGS)]
        second = [dataset_fingerprint(job.data) for job in port_sweep_jobs(**self.KWARGS)]
        assert first == second
        assert len(set(first)) == 2  # one dataset per port count
        assert (ShardPlan.from_jobs(port_sweep_jobs(**self.KWARGS), 2)
                == ShardPlan.from_jobs(port_sweep_jobs(**self.KWARGS), 2))

    def test_jobs_run_clean_and_full_information_wins(self):
        from repro.batch import BatchEngine
        from repro.experiments.workloads import port_sweep_jobs

        result = BatchEngine().run(port_sweep_jobs(**self.KWARGS))
        assert result.n_failed == 0, result.failures
        for records in (result.with_tag("n_ports", 2), result.with_tag("n_ports", 4)):
            by_directions = {record.tags["directions"]: record for record in records}
            # more directions per sample never hurt on lightly-noised data
            assert (by_directions["full"].error_vs_reference
                    <= by_directions[1].error_vs_reference * 1.5)

    def test_registry_exposes_all_named_grids(self):
        from repro.experiments.workloads import WORKLOADS, workload_jobs

        assert set(WORKLOADS) == {"mixed_batch_jobs", "monte_carlo_jobs",
                                  "passive_macromodel_jobs", "port_sweep_jobs",
                                  "time_domain_jobs"}
        jobs = workload_jobs("port_sweep_jobs", **self.KWARGS)
        assert len(jobs) == 8
        with pytest.raises(ValueError, match="unknown workload"):
            workload_jobs("no-such-grid")

    def test_validates_arguments(self):
        from repro.experiments.workloads import port_sweep_jobs

        with pytest.raises(ValueError):
            port_sweep_jobs(port_counts=())
        with pytest.raises(ValueError):
            port_sweep_jobs(port_counts=(0,))
        with pytest.raises(ValueError):
            port_sweep_jobs(block_sizes=())


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bb", 0.5]], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert len(lines) == 5

    def test_format_table_row_length_check(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1.0]])

    def test_format_series(self):
        text = format_series([1.0, 2.0], {"y": np.array([3.0, 4.0])}, x_label="f")
        assert "f" in text
        assert "3" in text

    def test_float_formatting(self):
        text = format_table(["x"], [[1.23456789e-8]])
        assert "e-08" in text
