"""Property-based tests (hypothesis) for the core data structures and invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.directions import identity_directions, orthonormal_directions
from repro.core.loewner import build_loewner_pencil, sylvester_residuals
from repro.core.realization import real_transform_matrix, svd_realization, to_real_data
from repro.core.sampling import minimal_sample_count
from repro.core.tangential import build_tangential_data
from repro.data import sample_scattering
from repro.data.dataset import FrequencyData
from repro.data.frequency import clustered_frequencies, linear_frequencies, log_frequencies
from repro.systems.interconnect import s_to_z, z_to_s
from repro.systems.random_systems import random_stable_system
from repro.utils.linalg import block_diag, numerical_rank, solve_sylvester_diag

# hypothesis settings shared by the heavier properties
_slow = settings(max_examples=12, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


class TestConversionProperties:
    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=2 ** 31 - 1),
           st.floats(min_value=1.0, max_value=200.0))
    @settings(max_examples=25, deadline=None)
    def test_z_s_roundtrip(self, n_ports, seed, z0):
        rng = np.random.default_rng(seed)
        z = rng.normal(size=(n_ports, n_ports)) + 1j * rng.normal(size=(n_ports, n_ports))
        z = z + (5.0 + n_ports) * np.eye(n_ports)
        assert np.allclose(s_to_z(z_to_s(z, z0), z0), z, rtol=1e-8)

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_scattering_of_passive_resistive_network_is_contractive(self, n_ports, seed):
        """S-matrices of passive resistive Z (Re(Z) PSD) have spectral norm <= 1."""
        rng = np.random.default_rng(seed)
        g = rng.normal(size=(n_ports, n_ports))
        z = g @ g.T + 1e-3 * np.eye(n_ports)  # symmetric positive definite => passive
        s = z_to_s(z)
        assert np.linalg.norm(s, 2) <= 1.0 + 1e-9


class TestFrequencyGridProperties:
    @given(st.floats(min_value=1e2, max_value=1e6), st.floats(min_value=2.0, max_value=1e4),
           st.integers(min_value=2, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_grids_sorted_and_in_band(self, f_min, ratio, count):
        f_max = f_min * ratio
        for grid in (linear_frequencies(f_min, f_max, count),
                     log_frequencies(f_min, f_max, count),
                     clustered_frequencies(f_min, f_max, count)):
            assert grid.size == count
            assert np.all(np.diff(grid) > 0) or count == 1
            assert grid[0] >= f_min * (1 - 1e-12)
            assert grid[-1] <= f_max * (1 + 1e-12)


class TestLinalgProperties:
    @given(st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=4),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_block_diag_preserves_rank(self, sizes, seed):
        rng = np.random.default_rng(seed)
        blocks = [rng.normal(size=(s, s)) for s in sizes]
        total_rank = sum(np.linalg.matrix_rank(b) for b in blocks)
        assert np.linalg.matrix_rank(block_diag(blocks)) == total_rank

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_sylvester_diag_solution(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        mu = rng.normal(size=rows) + 1j * rng.normal(size=rows)
        lam = rng.normal(size=cols) + 1j * rng.normal(size=cols) + 100.0
        rhs = rng.normal(size=(rows, cols))
        x = solve_sylvester_diag(mu, lam, rhs)
        assert np.allclose(x @ np.diag(lam) - np.diag(mu) @ x, rhs, atol=1e-8)

    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_numerical_rank_of_constructed_matrix(self, size, rank, seed):
        rank = min(rank, size)
        rng = np.random.default_rng(seed)
        u = np.linalg.qr(rng.normal(size=(size, size)))[0]
        v = np.linalg.qr(rng.normal(size=(size, size)))[0]
        s = np.zeros(size)
        s[:rank] = np.linspace(1.0, 2.0, rank)
        matrix = u @ np.diag(s) @ v
        sv = np.linalg.svd(matrix, compute_uv=False)
        assert numerical_rank(sv) == rank


class TestDirectionProperties:
    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_direction_generators_orthonormal(self, n_ports, block, count, seed):
        block = min(block, n_ports)
        for generator in (lambda: identity_directions(n_ports, block, count),
                          lambda: orthonormal_directions(n_ports, block, count, seed=seed)):
            for d in generator():
                assert d.shape == (n_ports, block)
                assert np.allclose(d.T @ d, np.eye(block), atol=1e-10)


class TestSamplingTheoremProperties:
    @given(st.integers(min_value=1, max_value=300), st.integers(min_value=1, max_value=40),
           st.integers(min_value=0, max_value=40))
    @settings(max_examples=50, deadline=None)
    def test_bounds_are_ordered(self, order, ports, rank_d):
        rank_d = min(rank_d, ports)
        estimate = minimal_sample_count(order, ports, ports, rank_d=rank_d)
        assert estimate.lower_bound <= estimate.upper_bound
        assert estimate.lower_bound <= estimate.empirical <= estimate.upper_bound
        assert estimate.empirical <= estimate.vfti_requirement + rank_d
        # the sample saving kicks in for genuinely multi-port systems whose
        # order dominates the port count (for ports == 1 MFTI degenerates to VFTI)
        assert ports == 1 or estimate.saving_factor >= 1.0 or order <= ports + rank_d


class TestLoewnerProperties:
    @given(st.integers(min_value=2, max_value=10), st.integers(min_value=1, max_value=3),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @_slow
    def test_pipeline_invariants(self, half_order, n_ports, seed):
        """For random systems and sample counts: Sylvester residuals vanish, the real
        transform keeps singular values, and the realization interpolates when the
        data is sufficient."""
        order = 2 * half_order
        system = random_stable_system(order=order, n_ports=n_ports, feedthrough=0.1,
                                      seed=seed % 10_000)
        n_samples = max(4, int(np.ceil((order + n_ports) / n_ports)) + 2)
        n_samples += n_samples % 2
        data = sample_scattering(system, log_frequencies(1e2, 1e5, n_samples))
        directions = identity_directions(n_ports, n_ports, n_samples, offset_stride=False)
        half = n_samples // 2
        tangential = build_tangential_data(
            data,
            right_directions=directions[:half],
            left_directions=directions[half:],
        )
        pencil = build_loewner_pencil(tangential)
        res1, res2 = sylvester_residuals(pencil, tangential)
        assert res1 < 1e-10 and res2 < 1e-10

        real_pencil = to_real_data(pencil)
        s_before = np.linalg.svd(pencil.shifted_loewner, compute_uv=False)
        s_after = np.linalg.svd(real_pencil.shifted_loewner, compute_uv=False)
        assert np.allclose(s_before, s_after, rtol=1e-8)

        model, _ = svd_realization(real_pencil, rank_method="tolerance", rank_tolerance=1e-10)
        response = model.frequency_response(data.frequencies_hz)
        err = np.linalg.norm(response - data.samples) / np.linalg.norm(data.samples)
        assert err < 1e-5


class TestFrequencyDataProperties:
    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_subset_and_decimate_preserve_content(self, k, ports, seed):
        rng = np.random.default_rng(seed)
        freqs = np.cumsum(rng.uniform(1.0, 10.0, size=k))
        samples = rng.normal(size=(k, ports, ports)) + 1j * rng.normal(size=(k, ports, ports))
        data = FrequencyData(freqs, samples)
        decimated = data.decimate(2)
        assert decimated.n_samples == int(np.ceil(k / 2))
        assert np.allclose(decimated.samples[0], data.samples[0])
        subset = data.subset(range(data.n_samples))
        assert np.allclose(subset.samples, data.samples)


def test_real_transform_matrix_unitary_property():
    """T is unitary for every conjugate-pair block structure (exhaustive small cases)."""
    for sizes in [(1, 1), (2, 2), (3, 3, 1, 1), (2, 2, 2, 2, 1, 1)]:
        t = real_transform_matrix(sizes)
        dim = sum(sizes)
        assert t.shape == (dim, dim)
        assert np.allclose(t.conj().T @ t, np.eye(dim), atol=1e-12)
