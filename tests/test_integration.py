"""End-to-end integration tests across the package layers.

These tests exercise the full pipeline a user of the library would run:
circuit -> MNA -> sampling (-> noise / file I/O) -> interpolation ->
validation, mixing modules that the unit tests cover in isolation.
"""

import numpy as np
from repro import (
    add_measurement_noise,
    linear_frequencies,
    log_frequencies,
    mfti,
    read_touchstone,
    recursive_mfti,
    sample_scattering,
    validate_model,
    vector_fit,
    vfti,
    write_touchstone,
)
from repro.circuits import coupled_rlc_lines, netlist_to_descriptor, rlc_ladder
from repro.circuits.pdn import PdnConfiguration, power_distribution_network
from repro.metrics import aggregate_error
from repro.systems import balanced_truncation, is_stable
from repro.vectorfitting.passivity import is_passive_scattering


class TestCircuitToMacromodel:
    def test_rlc_ladder_macromodeling(self):
        """Build a ladder circuit, sample its scattering data, recover it with MFTI."""
        circuit = netlist_to_descriptor(rlc_ladder(8, two_port=True))
        freqs = log_frequencies(1e6, 1e10, 30)
        data = sample_scattering(circuit, freqs, system_kind="Z")
        model = mfti(data, rank_method="tolerance", rank_tolerance=1e-8)
        report = validate_model(model.system, data)
        assert report.aggregate_error < 1e-6
        assert model.order <= circuit.order + 2

    def test_coupled_lines_crosstalk_preserved(self):
        """The recovered model reproduces the off-diagonal (crosstalk) entries."""
        circuit = netlist_to_descriptor(coupled_rlc_lines(2, 6))
        freqs = log_frequencies(1e7, 2e10, 24)
        data = sample_scattering(circuit, freqs, system_kind="Z")
        model = mfti(data, rank_method="tolerance", rank_tolerance=1e-8)
        response = model.frequency_response(freqs)
        crosstalk_model = np.abs(response[:, 2, 0])
        crosstalk_true = np.abs(data.samples[:, 2, 0])
        assert np.allclose(crosstalk_model, crosstalk_true, rtol=1e-3, atol=1e-9)

    def test_pdn_workflow_with_noise_and_recursion(self):
        """Small PDN + noise + recursive MFTI, validated against a clean sweep."""
        config = PdnConfiguration(n_ports=4, grid_rows=4, grid_cols=4, n_decaps=4,
                                  n_bulk_caps=1)
        pdn = power_distribution_network(config)
        freqs = linear_frequencies(1e6, 2e9, 40)
        clean = sample_scattering(pdn, freqs, system_kind="Z")
        noisy = add_measurement_noise(clean, relative_level=2e-4, seed=9)
        model = recursive_mfti(noisy, block_size=2, samples_per_iteration=4,
                               error_threshold=1e-2, rank_method="tolerance",
                               rank_tolerance=2e-4)
        err = model.aggregate_error(clean)
        assert err < 0.2
        baseline = vfti(noisy, rank_method="tolerance", rank_tolerance=2e-4)
        assert err < baseline.aggregate_error(clean)


class TestFileRoundtrip:
    def test_touchstone_to_macromodel(self, tmp_path, small_system, small_data, dense_data):
        """Write sampled data to a Touchstone file, read it back, and fit it."""
        path = tmp_path / "device.s4p"
        write_touchstone(small_data, path, fmt="RI", freq_unit="KHZ")
        loaded = read_touchstone(path)
        model = mfti(loaded)
        assert model.aggregate_error(dense_data) < 1e-6


class TestMethodComparison:
    def test_all_methods_agree_on_well_sampled_data(self, small_system):
        """With abundant clean data every method produces an accurate model."""
        freqs = log_frequencies(1e1, 1e5, 60)
        data = sample_scattering(small_system, freqs)
        reference = data

        mfti_model = mfti(data)
        vfti_model = vfti(data)
        vf_model = vector_fit(data, n_poles=24, n_iterations=8)

        assert mfti_model.aggregate_error(reference) < 1e-7
        assert vfti_model.aggregate_error(reference) < 1e-6
        vf_err = aggregate_error(vf_model.frequency_response(freqs), reference.samples)
        assert vf_err < 1e-3

    def test_mfti_model_usable_for_reduction_and_passivity_check(self):
        """The recovered descriptor model feeds into the rest of the toolchain.

        A feed-through-free benchmark system keeps the recovered ``E`` matrix
        invertible, so the model can be converted to explicit state space and
        reduced further by balanced truncation.
        """
        from repro.systems.random_systems import random_stable_system

        system = random_stable_system(order=16, n_ports=3, feedthrough=None, seed=51)
        data = sample_scattering(system, log_frequencies(1e1, 1e5, 12))
        model = mfti(data)
        assert model.order == system.order
        explicit = model.system.to_statespace()
        if is_stable(explicit):
            reduced = balanced_truncation(explicit, 8)
            assert reduced.order == 8
        # scattering passivity check over the sampled band: the random benchmark
        # system is not necessarily passive; the check must simply run and
        # return a boolean
        freqs = np.logspace(1, 5, 40)
        assert is_passive_scattering(model.system, freqs) in (True, False)
