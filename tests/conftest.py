"""Shared fixtures for the test-suite.

All fixtures are deliberately small (low orders, few ports, few samples) so
the suite stays fast; the full-scale paper settings are exercised only by the
benchmarks.  Expensive fixtures are session-scoped and immutable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.pdn import PdnConfiguration, power_distribution_network
from repro.data import log_frequencies, sample_scattering
from repro.data.noise import add_measurement_noise
from repro.systems.random_systems import random_stable_system


@pytest.fixture(scope="session")
def small_system():
    """Order-20, 4-port stable system with feed-through (rank 4)."""
    return random_stable_system(order=20, n_ports=4, feedthrough=0.1, seed=3)


@pytest.fixture(scope="session")
def siso_system():
    """Order-6 single-port system."""
    return random_stable_system(order=6, n_ports=1, feedthrough=0.2, seed=5)


@pytest.fixture(scope="session")
def medium_system():
    """Order-40, 8-port system used by the heavier core tests."""
    return random_stable_system(order=40, n_ports=8, feedthrough=0.05, seed=11)


@pytest.fixture(scope="session")
def small_data(small_system):
    """8 log-spaced scattering samples of the small system (enough for MFTI recovery)."""
    freqs = log_frequencies(1e1, 1e5, 8)
    return sample_scattering(small_system, freqs, label="small")


@pytest.fixture(scope="session")
def dense_data(small_system):
    """Dense validation sweep of the small system."""
    freqs = log_frequencies(1e1, 1e5, 60)
    return sample_scattering(small_system, freqs, label="small dense")


@pytest.fixture(scope="session")
def noisy_data(small_data):
    """The small data set with 0.1 % relative measurement noise."""
    return add_measurement_noise(small_data, relative_level=1e-3, seed=17)


@pytest.fixture(scope="session")
def many_sample_data(small_system):
    """24 log-spaced samples of the small system (over-sampled for MFTI)."""
    freqs = log_frequencies(1e1, 1e5, 24)
    return sample_scattering(small_system, freqs, label="small oversampled")


@pytest.fixture(scope="session")
def tiny_pdn_system():
    """A small (4x4 grid, 4-port) PDN used by the circuit-level tests."""
    config = PdnConfiguration(n_ports=4, grid_rows=4, grid_cols=4, n_decaps=4, n_bulk_caps=1)
    return power_distribution_network(config)


@pytest.fixture
def rng():
    """Fresh deterministic random generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def fit_cache_dir(tmp_path_factory):
    """Session-unique root directory for on-disk fit caches.

    Shared (same name, same semantics) with ``benchmarks/conftest.py``.
    ``tmp_path_factory`` derives from pytest's numbered, lock-protected
    basetemp, so concurrent pytest runs on one machine each get their own
    store and never collide; within a session the path is stable, so every
    test reuses one deterministic cache location.
    """
    return tmp_path_factory.mktemp("fit-cache")
