"""Tests for :mod:`repro.systems.random_systems`."""

import numpy as np
import pytest

from repro.systems.analysis import finite_poles, is_stable
from repro.systems.random_systems import (
    EXAMPLE1_SEED,
    example1_system,
    random_descriptor_system,
    random_port_map,
    random_stable_system,
)


class TestRandomStableSystem:
    def test_dimensions(self):
        sys_ = random_stable_system(order=12, n_ports=3, seed=0)
        assert sys_.order == 12
        assert sys_.n_ports == 3

    def test_stability(self):
        for seed in range(5):
            assert is_stable(random_stable_system(order=16, n_ports=2, seed=seed))

    def test_reproducible_with_seed(self):
        a = random_stable_system(order=10, n_ports=2, seed=42)
        b = random_stable_system(order=10, n_ports=2, seed=42)
        assert np.allclose(a.A, b.A)
        assert np.allclose(a.B, b.B)

    def test_different_seeds_differ(self):
        a = random_stable_system(order=10, n_ports=2, seed=1)
        b = random_stable_system(order=10, n_ports=2, seed=2)
        assert not np.allclose(a.A, b.A)

    def test_odd_order_supported(self):
        sys_ = random_stable_system(order=7, n_ports=2, seed=3)
        assert sys_.order == 7
        assert is_stable(sys_)

    def test_poles_within_band(self):
        f_min, f_max = 1e3, 1e6
        sys_ = random_stable_system(order=20, n_ports=2, freq_min_hz=f_min, freq_max_hz=f_max,
                                    seed=5)
        mags = np.abs(finite_poles(sys_)) / (2 * np.pi)
        assert np.all(mags >= 0.5 * f_min)
        assert np.all(mags <= 2.0 * f_max)

    def test_no_feedthrough_option(self):
        sys_ = random_stable_system(order=8, n_ports=2, feedthrough=None, seed=1)
        assert np.allclose(sys_.D, 0.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            random_stable_system(order=4, n_ports=2, freq_min_hz=1e5, freq_max_hz=1e3)
        with pytest.raises(ValueError):
            random_stable_system(order=4, n_ports=2, damping_min=0.5, damping_max=0.1)
        with pytest.raises(ValueError):
            random_stable_system(order=0, n_ports=2)

    def test_transfer_function_magnitude_reasonable(self):
        """The excitation scaling keeps responses O(1), not vanishing or exploding."""
        sys_ = random_stable_system(order=30, n_ports=4, seed=9)
        freqs = np.logspace(1, 5, 40)
        mags = np.abs(sys_.frequency_response(freqs))
        assert 1e-3 < np.max(mags) < 1e3


class TestRandomDescriptorSystem:
    def test_nontrivial_e(self):
        sys_ = random_descriptor_system(order=10, n_ports=2, seed=4)
        assert not np.allclose(sys_.E, np.eye(10))

    def test_transfer_function_matches_statespace_form(self):
        sys_ = random_descriptor_system(order=10, n_ports=2, seed=4)
        explicit = sys_.to_statespace()
        s = 1j * 2e3
        assert np.allclose(sys_.transfer_function(s), explicit.transfer_function(s), atol=1e-8)

    def test_stability_preserved(self):
        assert is_stable(random_descriptor_system(order=12, n_ports=3, seed=8))


class TestPortMapAndExample1:
    def test_random_port_map_shapes(self, rng):
        b, c = random_port_map(10, 3, rng)
        assert b.shape == (10, 3)
        assert c.shape == (3, 10)

    def test_example1_dimensions(self):
        sys_ = example1_system(order=30, n_ports=6)
        assert sys_.order == 30
        assert sys_.n_ports == 6

    def test_example1_default_seed_fixed(self):
        a = example1_system(order=20, n_ports=4)
        b = example1_system(order=20, n_ports=4, seed=EXAMPLE1_SEED)
        assert np.allclose(a.A, b.A)

    def test_example1_has_feedthrough(self):
        sys_ = example1_system(order=20, n_ports=4)
        assert np.linalg.matrix_rank(sys_.D) == 4
