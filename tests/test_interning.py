"""The interning layer's contract: bitwise identity, dedup, exact counters.

Three layers, mirroring the module split:

* **hypothesis property tests** of :class:`~repro.cache.DatasetPool`,
  :class:`~repro.cache.JobTable` and the shared-memory arena -- interning
  and reconstruction (pickle *and* shm) are bitwise round trips, distinct
  payloads never collide onto one ref, byte accounting adds up;
* **wire-protocol tests** -- the version-2 batch-level dataset table and the
  legacy version-1 inline shape decode to jobs with identical fingerprints
  and run to ``comparable_json``-identical batches; tampered tables and
  dangling refs are rejected;
* **differential engine tests** -- serial / response-cache-off /
  process+shared-memory runs and a 2-shard CLI round trip (process executor,
  ``--shared-memory``) all produce ``comparable_json``-identical results,
  and the response-cache tallies are *exactly* what the sharing structure
  predicts.
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import (
    BatchEngine,
    FitJob,
    comparable_json,
    job_fingerprint,
    load_manifest,
    merge_shard_results,
    numerical_differences,
    write_manifests,
)
from repro.batch.shard import cli_subprocess
from repro.batch.sharding import ShardPlan
from repro.cache import (
    DatasetPool,
    JobTable,
    ResponseCache,
    SharedDatasetArena,
    dataset_fingerprint,
    dataset_nbytes,
    grid_fingerprint,
    system_fingerprint,
)
from repro.cache.interning import _dataset_from_shared
from repro.core.options import MftiOptions
from repro.data.dataset import FrequencyData
from repro.experiments.workloads import mixed_batch_jobs
from repro.serve.protocol import ProtocolError, decode_batch, encode_batch

# tiny generated datasets: everything here is shape-agnostic and tier 1
# must stay fast
_DIMS = st.integers(min_value=1, max_value=3)
_COUNTS = st.integers(min_value=1, max_value=4)
_FINITE = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False,
                    allow_infinity=False, width=64)


@st.composite
def datasets(draw) -> FrequencyData:
    """A small random-but-valid FrequencyData."""
    k, p, m = draw(_COUNTS), draw(_DIMS), draw(_DIMS)
    gaps = draw(st.lists(st.floats(min_value=0.5, max_value=10.0),
                         min_size=k, max_size=k))
    freqs = np.cumsum(np.asarray(gaps, dtype=float)) + 1.0
    real = draw(st.lists(_FINITE, min_size=k * p * m, max_size=k * p * m))
    imag = draw(st.lists(_FINITE, min_size=k * p * m, max_size=k * p * m))
    samples = (np.asarray(real) + 1j * np.asarray(imag)).reshape(k, p, m)
    kind = draw(st.sampled_from(["S", "Z", "Y", "H"]))
    return FrequencyData(freqs, samples, kind=kind, label="generated")


def bitwise_equal(a: FrequencyData, b: FrequencyData) -> bool:
    """Arrays byte-identical (dtype, shape, every bit) plus the metadata."""
    return (
        a.frequencies_hz.dtype == b.frequencies_hz.dtype
        and a.samples.dtype == b.samples.dtype
        and a.frequencies_hz.shape == b.frequencies_hz.shape
        and a.samples.shape == b.samples.shape
        and a.frequencies_hz.tobytes() == b.frequencies_hz.tobytes()
        and a.samples.tobytes() == b.samples.tobytes()
        and a.kind == b.kind
        and a.reference_impedance == b.reference_impedance
    )


# --------------------------------------------------------------------------- #
# DatasetPool properties
# --------------------------------------------------------------------------- #
class TestDatasetPool:
    @settings(max_examples=25, deadline=None)
    @given(data=datasets())
    def test_intern_is_a_bitwise_round_trip_with_exact_byte_accounting(self, data):
        pool = DatasetPool()
        ref = pool.intern(data)
        assert ref == dataset_fingerprint(data)
        assert pool.get(ref) is data
        assert bitwise_equal(pool.get(ref), data)
        # interning an equal copy dedupes onto the first instance
        copy = FrequencyData(
            np.array(data.frequencies_hz, copy=True),
            np.array(data.samples, copy=True),
            kind=data.kind,
            reference_impedance=data.reference_impedance,
            label="another label",
        )
        assert pool.intern(copy) == ref
        assert pool.get(ref) is data
        size = dataset_nbytes(data)
        assert (pool.interned, pool.total_bytes, pool.unique_bytes) == (2, 2 * size, size)
        assert pool.bytes_saved == size
        assert len(pool) == 1 and ref in pool

    @settings(max_examples=25, deadline=None)
    @given(data=datasets(), st_data=st.data())
    def test_distinct_payloads_never_collide_on_one_ref(self, data, st_data):
        k = st_data.draw(st.integers(0, data.n_samples - 1), label="freq index")
        i = st_data.draw(st.integers(0, data.n_outputs - 1), label="row")
        j = st_data.draw(st.integers(0, data.n_inputs - 1), label="col")
        samples = np.array(data.samples, copy=True)
        entry = samples[k, i, j]
        samples[k, i, j] = np.nextafter(entry.real, np.inf) + 1j * entry.imag
        perturbed = data.with_samples(samples)
        pool = DatasetPool()
        assert pool.intern(data) != pool.intern(perturbed)
        assert len(pool) == 2

    def test_pickle_round_trip_drops_nothing_but_the_lock(self, small_data):
        pool = DatasetPool()
        ref = pool.intern(small_data)
        clone = pickle.loads(pickle.dumps(pool))
        assert bitwise_equal(clone.get(ref), small_data)
        assert clone.stats() == pool.stats()


# --------------------------------------------------------------------------- #
# shared-memory transport
# --------------------------------------------------------------------------- #
class TestSharedMemory:
    @settings(max_examples=10, deadline=None)
    @given(data=datasets())
    def test_shm_reconstruction_is_bitwise(self, data):
        arena = SharedDatasetArena()
        try:
            ref = dataset_fingerprint(data)
            entry = arena.entry_for(ref, data)
            rebuilt = _dataset_from_shared(entry)
            assert bitwise_equal(rebuilt, data)
            assert dataset_fingerprint(rebuilt) == ref
            # re-requesting the same fingerprint reuses the segment
            again = arena.entry_for(ref, data)
            assert again["segment"] == entry["segment"]
            assert len(arena) == 1
        finally:
            arena.cleanup()
        assert len(arena) == 0 and arena.shared_bytes == 0

    def test_cleanup_unlinks_segments(self, small_data):
        from multiprocessing import shared_memory

        arena = SharedDatasetArena()
        entry = arena.entry_for(dataset_fingerprint(small_data), small_data)
        arena.cleanup()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=entry["segment"])


# --------------------------------------------------------------------------- #
# JobTable: the process executor's chunk codec
# --------------------------------------------------------------------------- #
class TestJobTable:
    def chunk(self, small_data, noisy_data, dense_data):
        jobs = [
            FitJob(small_data, method="vfti", reference=dense_data, label="a"),
            FitJob(small_data, method="mfti", options=MftiOptions(block_size=2),
                   reference=dense_data, label="b", tags={"t": 2}),
            FitJob(noisy_data, method="vfti", reference=dense_data, label="c"),
        ]
        return list(enumerate(jobs)), jobs

    @pytest.mark.parametrize("use_arena", [False, True])
    def test_pack_unpack_is_bitwise_and_dedupes(self, small_data, noisy_data,
                                                dense_data, use_arena):
        chunk, jobs = self.chunk(small_data, noisy_data, dense_data)
        arena = SharedDatasetArena() if use_arena else None
        try:
            table = JobTable.pack(chunk, arena=arena)
            # 3 unique datasets across 6 consultations
            assert len(table.datasets) == 3
            if use_arena:
                assert all(tag == "shm" for tag, _ in table.datasets.values())
                assert len(arena) == 3
            rebuilt = table.unpack()
        finally:
            if arena is not None:
                arena.cleanup()
        assert [index for index, _ in rebuilt] == [0, 1, 2]
        for (_, original), (_, job) in zip(chunk, rebuilt):
            assert bitwise_equal(job.data, original.data)
            assert bitwise_equal(job.reference, original.reference)
            assert job_fingerprint(job) == job_fingerprint(original)
        # jobs sharing a dataset resolve to one instance per chunk
        assert rebuilt[0][1].data is rebuilt[1][1].data
        assert rebuilt[0][1].reference is rebuilt[2][1].reference

    def test_unpack_through_pool_persists_across_chunks(self, small_data, dense_data):
        pool = DatasetPool()
        chunk_a = [(0, FitJob(small_data, method="vfti", reference=dense_data))]
        chunk_b = [(1, FitJob(small_data, method="mfti", reference=dense_data))]
        jobs_a = JobTable.pack(chunk_a).unpack(pool=pool)
        jobs_b = JobTable.pack(chunk_b).unpack(pool=pool)
        # the second chunk resolves straight out of the worker pool
        assert jobs_b[0][1].data is jobs_a[0][1].data
        assert jobs_b[0][1].reference is jobs_a[0][1].reference
        assert len(pool) == 2

    def test_unpack_rejects_dangling_refs_and_tampered_segments(self, small_data):
        table = JobTable.pack([(0, FitJob(small_data, method="vfti"))])
        dangling = JobTable(jobs=table.jobs, datasets={})
        with pytest.raises(ValueError, match="unknown dataset"):
            dangling.unpack()
        # a shm entry whose bytes do not hash back to the claimed ref
        arena = SharedDatasetArena()
        try:
            other = small_data.with_samples(np.array(small_data.samples) * 2.0)
            entry = arena.entry_for(dataset_fingerprint(other), other)
            lying = JobTable(jobs=table.jobs,
                             datasets={next(iter(table.datasets)): ("shm", entry)})
            with pytest.raises(ValueError, match="different fingerprint"):
                lying.unpack()
        finally:
            arena.cleanup()

    def test_packed_chunk_is_smaller_than_naive_pickle(self, small_data, dense_data):
        chunk = [(i, FitJob(small_data, method="vfti", reference=dense_data,
                            label=f"job-{i}"))
                 for i in range(8)]
        naive = len(pickle.dumps(chunk, protocol=pickle.HIGHEST_PROTOCOL))
        packed = JobTable.pack(chunk).payload_nbytes()
        # 16 dataset consultations collapse to 2 shipped copies.  (The naive
        # pickle also memoizes *object-identical* datasets, so compare
        # against distinct-copy jobs the way cross-process transports see
        # decoded payloads.)
        distinct = [
            (i, FitJob(job.data.with_samples(np.array(job.data.samples, copy=True)),
                       method=job.method, label=job.label,
                       reference=job.reference.with_samples(
                           np.array(job.reference.samples, copy=True))))
            for i, job in chunk
        ]
        naive_distinct = len(pickle.dumps(distinct, protocol=pickle.HIGHEST_PROTOCOL))
        assert packed < naive_distinct
        assert packed <= naive + 4096  # refs cost a few hundred bytes, not copies


# --------------------------------------------------------------------------- #
# wire protocol: batch-level dataset table vs. legacy inline
# --------------------------------------------------------------------------- #
class TestWireProtocol:
    def jobs(self, small_data, noisy_data, dense_data):
        return [
            FitJob(small_data, method="vfti", reference=dense_data, label="a"),
            FitJob(small_data, method="mfti", options=MftiOptions(block_size=2),
                   reference=dense_data, label="b"),
            FitJob(noisy_data, method="vfti", reference=dense_data, label="c"),
        ]

    def test_v2_and_v1_decode_to_identical_jobs(self, small_data, noisy_data,
                                                dense_data):
        jobs = self.jobs(small_data, noisy_data, dense_data)
        pool = DatasetPool()
        v2 = encode_batch(jobs, pool=pool)
        v1 = encode_batch(jobs, inline=True)
        assert v2["protocol_version"] == 2 and v1["protocol_version"] == 1
        assert set(v2["datasets"]) == {dataset_fingerprint(d)
                                       for d in (small_data, noisy_data, dense_data)}
        # 6 consultations, 3 unique documents actually built
        assert (pool.encode_hits, pool.encode_misses) == (3, 3)
        # both shapes survive JSON and decode to fingerprint-identical jobs
        decoded_v2 = decode_batch(json.loads(json.dumps(v2)))
        decoded_v1 = decode_batch(json.loads(json.dumps(v1)))
        fingerprints = [job_fingerprint(job) for job in jobs]
        assert [job_fingerprint(j) for j in decoded_v2] == fingerprints
        assert [job_fingerprint(j) for j in decoded_v1] == fingerprints
        for decoded in (decoded_v2, decoded_v1):
            for job, original in zip(decoded, jobs):
                assert bitwise_equal(job.data, original.data)
                assert bitwise_equal(job.reference, original.reference)
        # the table shape ships each dataset once: strictly smaller payload
        assert len(json.dumps(v2)) < len(json.dumps(v1))

    def test_decoded_batches_run_to_identical_results(self, small_data, noisy_data,
                                                      dense_data):
        jobs = self.jobs(small_data, noisy_data, dense_data)
        engine = BatchEngine()
        reference = comparable_json(engine.run(jobs))
        via_v2 = comparable_json(engine.run(decode_batch(encode_batch(jobs))))
        via_v1 = comparable_json(engine.run(decode_batch(encode_batch(jobs, inline=True))))
        assert via_v2 == reference
        assert via_v1 == reference

    def test_decode_rejects_tampered_table_and_dangling_ref(self, small_data,
                                                            dense_data):
        jobs = [FitJob(small_data, method="vfti", reference=dense_data)]
        document = encode_batch(jobs)
        wrong_key = dict(document)
        wrong_key["datasets"] = {"0" * 64: next(iter(document["datasets"].values()))}
        wrong_key["jobs"] = [dict(document["jobs"][0], data_ref="0" * 64)]
        with pytest.raises(ProtocolError):
            decode_batch(wrong_key)
        dangling = dict(document, datasets={})
        with pytest.raises(ProtocolError):
            decode_batch(dangling)


# --------------------------------------------------------------------------- #
# the cross-job response cache
# --------------------------------------------------------------------------- #
class TestResponseCache:
    def test_memoized_values_are_bitwise_and_frozen(self, small_data, small_system):
        from repro.metrics.errors import reference_norms

        cache = ResponseCache()
        first, status_first = cache.reference_norms(small_data)
        again, status_again = cache.reference_norms(small_data)
        assert (status_first, status_again) == ("miss", "hit")
        assert again is first and not first.flags.writeable
        assert first.tobytes() == reference_norms(small_data.samples).tobytes()

        sweep, s1 = cache.model_sweep(small_system, small_data)
        sweep2, s2 = cache.model_sweep(small_system, small_data)
        assert (s1, s2) == ("miss", "hit") and sweep2 is sweep
        direct = np.asarray(small_system.frequency_response(small_data.frequencies_hz))
        assert sweep.tobytes() == direct.tobytes()
        assert cache.stats() == {"norm_hits": 1, "norm_misses": 1,
                                 "sweep_hits": 1, "sweep_misses": 1,
                                 "norm_entries": 1, "sweep_entries": 1}

    def test_sweep_key_separates_models_and_grids(self, small_system, siso_system,
                                                  small_data, dense_data):
        assert system_fingerprint(small_system) != system_fingerprint(siso_system)
        assert grid_fingerprint(small_data) != grid_fingerprint(dense_data)
        cache = ResponseCache()
        cache.model_sweep(small_system, small_data)
        _, status = cache.model_sweep(small_system, dense_data)
        assert status == "miss"  # same model, different grid

    def test_lru_bound_evicts_oldest(self, small_data, dense_data):
        cache = ResponseCache(max_entries=1)
        cache.reference_norms(small_data)
        cache.reference_norms(dense_data)  # evicts small_data's norms
        _, status = cache.reference_norms(small_data)
        assert status == "miss"

    def test_batch_tallies_match_the_sharing_structure_exactly(self, small_data,
                                                               dense_data):
        jobs = [
            FitJob(small_data, method="vfti", reference=dense_data, label="a"),
            FitJob(small_data, method="mfti", reference=dense_data, label="b"),
            FitJob(small_data, method="vfti", reference=dense_data, label="c"),
        ]
        result = BatchEngine().run(jobs).raise_failures()
        # per job: 2 sweep + 2 norm consultations (error_vs_data + _reference).
        # job a: cold cache, 4 misses.  job b: new model (2 sweep misses) over
        # the already-normed datasets (2 norm hits).  job c: same fit as a,
        # same system fingerprint -- all 4 consultations hit.
        assert [(r.response_hits, r.response_misses) for r in result.records] == \
               [(0, 4), (2, 2), (4, 0)]
        assert (result.n_response_hits, result.n_response_misses) == (6, 6)
        assert result.used_responses
        # hits == consultations - (unique norms + unique sweeps)
        assert result.n_response_hits == 12 - (2 + 2 * 2)

        off = BatchEngine(response_cache=False).run(jobs).raise_failures()
        assert not off.used_responses
        assert comparable_json(off) == comparable_json(result)


# --------------------------------------------------------------------------- #
# engine + shard differentials with interning on
# --------------------------------------------------------------------------- #
#: Scaled-down mixed grid shared with test_sharding (fast, same structure).
GRID_KWARGS = dict(pdn_samples=36, pdn_validation=48, line_sections=10,
                   line_samples=40, line_validation=50)


@pytest.fixture(scope="module")
def grid_jobs():
    return mixed_batch_jobs(**GRID_KWARGS)


@pytest.fixture(scope="module")
def serial_reference(grid_jobs):
    result = BatchEngine().run(grid_jobs)
    assert result.n_failed == 0, result.failures
    return result


class TestEngineDifferentials:
    def test_process_shared_memory_is_bitwise_identical(self, grid_jobs,
                                                        serial_reference):
        engine = BatchEngine(executor="process", max_workers=2, chunk_size=2,
                             shared_memory=True)
        result = engine.run(grid_jobs)
        assert not numerical_differences(serial_reference, result)
        assert comparable_json(result) == comparable_json(serial_reference)

    def test_response_cache_off_is_bitwise_identical(self, grid_jobs,
                                                     serial_reference):
        result = BatchEngine(response_cache=False).run(grid_jobs)
        assert not result.used_responses
        assert comparable_json(result) == comparable_json(serial_reference)

    def test_two_shard_cli_merge_with_interning_on(self, grid_jobs,
                                                   serial_reference, tmp_path):
        """2-shard CLI round trip, process executor + shared memory per shard."""
        plan = ShardPlan.from_jobs(grid_jobs, 2)
        paths = write_manifests(plan, grid_jobs, tmp_path,
                                workload="mixed_batch_jobs",
                                workload_kwargs=GRID_KWARGS)
        shard_files = []
        for path in paths:
            run = cli_subprocess("run", str(path), "--executor", "process",
                                 "--workers", "2", "--chunk-size", "1",
                                 "--shared-memory")
            assert run.returncode == 0, run.stderr
            shard_files.append(str(path).replace(".manifest.json", ".result.npz"))
        merged = merge_shard_results(shard_files)
        assert not numerical_differences(serial_reference, merged)
        assert comparable_json(merged) == comparable_json(serial_reference)

    def test_manifest_round_trip_preserves_shared_memory_flag(self, grid_jobs,
                                                              tmp_path):
        engine = BatchEngine.from_config({"executor": "process",
                                          "shared_memory": True})
        assert engine.shared_memory
        assert BatchEngine.from_config(engine.to_config()).shared_memory
        # defaults stay terse: no flag emitted unless set
        assert "shared_memory" not in BatchEngine().to_config()
        paths = write_manifests(ShardPlan.from_jobs(grid_jobs, 2), grid_jobs,
                                tmp_path, workload="mixed_batch_jobs",
                                workload_kwargs=GRID_KWARGS)
        manifest = load_manifest(paths[0])
        assert manifest is not None
