"""Tests for the vector-fitting baseline (:mod:`repro.vectorfitting`)."""

import numpy as np
import pytest

from repro.data import log_frequencies, sample_scattering
from repro.metrics import aggregate_error
from repro.systems.random_systems import random_stable_system
from repro.vectorfitting.fitting import vector_fit
from repro.vectorfitting.passivity import (
    immittance_margins,
    is_passive_immittance,
    is_passive_scattering,
    passivity_violations,
    passivity_violations_reference,
    scattering_margins,
)
from repro.vectorfitting.poles import initial_poles
from repro.vectorfitting.rational import PoleResidueModel


class TestInitialPoles:
    def test_count_and_pairing(self):
        poles = initial_poles(6, 1e3, 1e6)
        assert poles.size == 6
        assert np.allclose(poles[0::2], np.conj(poles[1::2]))

    def test_odd_count_gets_real_pole(self):
        poles = initial_poles(5, 1e3, 1e6)
        assert np.sum(np.abs(poles.imag) < 1e-12) == 1

    def test_all_stable(self):
        assert np.all(initial_poles(10, 1e2, 1e8).real < 0)

    def test_band_coverage(self):
        poles = initial_poles(8, 1e3, 1e6)
        imag = np.abs(poles.imag[poles.imag != 0])
        assert imag.min() == pytest.approx(2 * np.pi * 1e3)
        assert imag.max() == pytest.approx(2 * np.pi * 1e6)

    def test_log_spacing_option(self):
        poles = initial_poles(8, 1e2, 1e8, spacing="log")
        imag = np.sort(np.abs(poles.imag[poles.imag > 0]))
        ratios = imag[1:] / imag[:-1]
        assert np.allclose(ratios, ratios[0], rtol=1e-6)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            initial_poles(4, 1e6, 1e3)
        with pytest.raises(ValueError):
            initial_poles(4, 1e3, 1e6, spacing="geometric")


class TestPoleResidueModel:
    def test_evaluation_matches_definition(self):
        poles = np.array([-1.0 + 2.0j, -1.0 - 2.0j])
        residue = np.array([[0.5 + 0.25j]])
        residues = np.stack([residue, residue.conj()])
        model = PoleResidueModel(poles, residues, d=[[0.1]])
        s = 1j * 3.0
        expected = residue / (s - poles[0]) + residue.conj() / (s - poles[1]) + 0.1
        assert np.allclose(model.transfer_function(s), expected)
        assert np.allclose(model(s), expected)

    def test_frequency_response_shape(self):
        poles = np.array([-10.0])
        residues = np.ones((1, 2, 3))
        model = PoleResidueModel(poles, residues)
        assert model.frequency_response([1.0, 2.0, 3.0]).shape == (3, 2, 3)
        assert model.n_outputs == 2
        assert model.n_inputs == 3
        assert model.order == 1

    def test_stability_flag(self):
        stable = PoleResidueModel(np.array([-1.0]), np.ones((1, 1, 1)))
        unstable = PoleResidueModel(np.array([1.0]), np.ones((1, 1, 1)))
        assert stable.is_stable
        assert not unstable.is_stable

    def test_to_statespace_matches_rational_form(self):
        poles = np.array([-5.0, -1.0 + 4.0j, -1.0 - 4.0j])
        rng = np.random.default_rng(0)
        r_real = rng.normal(size=(1, 2, 2))
        r_complex = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        residues = np.concatenate([r_real, [r_complex], [r_complex.conj()]])
        model = PoleResidueModel(poles, residues, d=rng.normal(size=(2, 2)))
        ss = model.to_statespace()
        freqs = np.array([0.1, 1.0, 3.0])
        assert np.allclose(ss.frequency_response(freqs), model.frequency_response(freqs),
                           atol=1e-10)

    def test_unpaired_complex_pole_rejected_in_conversion(self):
        model = PoleResidueModel(np.array([-1.0 + 1j]), np.ones((1, 1, 1)))
        with pytest.raises(ValueError):
            model.to_statespace()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            PoleResidueModel(np.array([-1.0, -2.0]), np.ones((1, 2, 2)))
        with pytest.raises(ValueError):
            PoleResidueModel(np.array([-1.0]), np.ones((1, 2, 2)), d=np.ones((3, 3)))


class TestVectorFit:
    @pytest.fixture(scope="class")
    def workload(self):
        system = random_stable_system(order=12, n_ports=2, feedthrough=0.1, seed=31)
        freqs = log_frequencies(1e1, 1e5, 60)
        data = sample_scattering(system, freqs)
        return system, data

    def test_fit_accuracy_with_enough_poles(self, workload):
        system, data = workload
        result = vector_fit(data, n_poles=14, n_iterations=8)
        response = result.frequency_response(data.frequencies_hz)
        assert aggregate_error(response, data.samples) < 1e-4
        assert result.model.is_stable

    def test_more_poles_improve_or_match_accuracy(self, workload):
        _, data = workload
        few = vector_fit(data, n_poles=6, n_iterations=6)
        many = vector_fit(data, n_poles=14, n_iterations=6)
        err_few = aggregate_error(few.frequency_response(data.frequencies_hz), data.samples)
        err_many = aggregate_error(many.frequency_response(data.frequencies_hz), data.samples)
        assert err_many <= err_few

    def test_result_metadata(self, workload):
        _, data = workload
        result = vector_fit(data, n_poles=10, n_iterations=4)
        assert result.n_poles == 10
        assert result.order == 10
        assert 1 <= result.n_iterations <= 4
        assert len(result.pole_history) == result.n_iterations
        assert result.elapsed_seconds > 0
        assert "vector-fitting" in result.summary()

    def test_starting_poles_respected(self, workload):
        _, data = workload
        start = initial_poles(8, 1e1, 1e5)
        result = vector_fit(data, n_poles=8, starting_poles=start, n_iterations=3)
        assert result.n_poles == 8

    def test_invalid_arguments(self, workload):
        _, data = workload
        with pytest.raises(ValueError):
            vector_fit(data, n_poles=0)
        with pytest.raises(ValueError):
            vector_fit(data, n_poles=4, starting_poles=initial_poles(6, 1e1, 1e5))

    def test_siso_fit(self, siso_system):
        data = sample_scattering(siso_system, log_frequencies(1e1, 1e5, 40))
        result = vector_fit(data, n_poles=8, n_iterations=8)
        err = aggregate_error(result.frequency_response(data.frequencies_hz), data.samples)
        assert err < 1e-5


class TestPassivity:
    def test_contractive_model_is_passive(self):
        model = PoleResidueModel(np.array([-10.0]), 0.01 * np.ones((1, 1, 1)), d=[[0.5]])
        freqs = np.logspace(-1, 2, 50)
        assert is_passive_scattering(model, freqs)

    def test_violation_detected(self):
        model = PoleResidueModel(np.array([-1.0]), np.ones((1, 1, 1)) * 5.0, d=[[0.9]])
        freqs = np.logspace(-2, 1, 50)
        violations = passivity_violations(model, freqs, representation="S")
        assert violations
        assert violations[0].metric > 1.0

    def test_immittance_check(self):
        passive = PoleResidueModel(np.array([-1.0]), np.ones((1, 1, 1)), d=[[1.0]])
        freqs = np.logspace(-1, 1, 20)
        assert is_passive_immittance(passive, freqs)

    def test_invalid_representation(self):
        model = PoleResidueModel(np.array([-1.0]), np.ones((1, 1, 1)))
        with pytest.raises(ValueError):
            passivity_violations(model, [1.0], representation="T")
        with pytest.raises(ValueError):
            passivity_violations_reference(model, [1.0], representation="T")


class TestBatchedPassivityKernel:
    """The stacked SVD / eigvalsh path against the per-frequency oracle."""

    def _mimo_model(self, seed=0, n_ports=3):
        system = random_stable_system(order=12, n_ports=n_ports,
                                      feedthrough=0.4, seed=seed)
        return system

    @pytest.mark.parametrize("representation", ["S", "Z"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_violations_match_reference_loop(self, representation, seed):
        model = self._mimo_model(seed=seed)
        freqs = np.logspace(0, 6, 80)
        fast = passivity_violations(model, freqs, representation=representation,
                                    tolerance=1e-8)
        slow = passivity_violations_reference(model, freqs,
                                              representation=representation,
                                              tolerance=1e-8)
        assert len(fast) == len(slow)
        for a, b in zip(fast, slow):
            assert a.frequency_hz == b.frequency_hz
            assert a.metric == pytest.approx(b.metric, rel=1e-12, abs=1e-14)

    def test_scattering_margins_match_per_matrix_norms(self):
        model = self._mimo_model(seed=5)
        freqs = np.logspace(0, 6, 40)
        response = np.asarray(model.frequency_response(freqs))
        margins = scattering_margins(response)
        expected = np.array([np.linalg.norm(matrix, 2) for matrix in response])
        np.testing.assert_allclose(margins, expected, rtol=1e-12)

    def test_immittance_margins_match_per_matrix_eigs(self):
        model = self._mimo_model(seed=6)
        freqs = np.logspace(0, 6, 40)
        response = np.asarray(model.frequency_response(freqs))
        margins = immittance_margins(response)
        expected = np.array([
            np.min(np.linalg.eigvalsh(0.5 * (matrix + matrix.conj().T)))
            for matrix in response
        ])
        np.testing.assert_allclose(margins, expected, rtol=1e-12, atol=1e-14)

    def test_empty_sweep(self):
        assert scattering_margins(np.empty((0, 2, 2))).size == 0
        assert immittance_margins(np.empty((0, 2, 2))).size == 0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            scattering_margins(np.ones((2, 2)))
        with pytest.raises(ValueError):
            immittance_margins(np.ones((3, 2, 3)))  # non-square
