"""Tests for the Loewner pencil assembly and the realization lemmas."""

import numpy as np
import pytest

from repro.core.directions import identity_directions
from repro.core.loewner import build_loewner_pencil, sylvester_residuals
from repro.core.realization import (
    direct_realization,
    real_transform_matrix,
    svd_realization,
    to_real_data,
)
from repro.core.tangential import build_tangential_data
from repro.data import sample_scattering
from repro.data.frequency import log_frequencies
from repro.systems.random_systems import random_stable_system


@pytest.fixture(scope="module")
def setup():
    """System, sampled data and full-block tangential data for the Loewner tests."""
    system = random_stable_system(order=14, n_ports=3, feedthrough=0.2, seed=21)
    data = sample_scattering(system, log_frequencies(1e2, 1e5, 8))
    directions = identity_directions(3, 3, 4, offset_stride=False)
    tangential = build_tangential_data(
        data, right_directions=directions, left_directions=directions,
    )
    pencil = build_loewner_pencil(tangential)
    return system, data, tangential, pencil


class TestLoewnerPencil:
    def test_shapes(self, setup):
        _, _, tangential, pencil = setup
        assert pencil.loewner.shape == (tangential.k_left, tangential.k_right)
        assert pencil.shifted_loewner.shape == pencil.loewner.shape
        assert pencil.is_square
        assert pencil.n_inputs == 3
        assert pencil.n_outputs == 3

    def test_sylvester_equations_hold(self, setup):
        """Eq. (13): the assembled pencil satisfies both Sylvester equations."""
        _, _, tangential, pencil = setup
        res_l, res_sl = sylvester_residuals(pencil, tangential)
        assert res_l < 1e-12
        assert res_sl < 1e-12

    def test_rank_bound_of_lemma_33(self, setup):
        """Lemma 3.3: rank(x*L - sL) <= order + rank(D)."""
        system, _, _, pencil = setup
        bound = system.order + np.linalg.matrix_rank(system.D)
        for x in pencil.sample_points[:3]:
            rank = np.linalg.matrix_rank(pencil.shifted_pencil(x), tol=1e-8)
            assert rank <= bound

    def test_singular_value_profiles(self, setup):
        _, _, _, pencil = setup
        profiles = pencil.singular_values()
        assert set(profiles) == {"loewner", "shifted_loewner", "pencil"}
        for values in profiles.values():
            assert np.all(np.diff(values) <= 1e-12)

    def test_singular_value_profiles_selectable(self, setup):
        """Requesting a subset computes only those SVDs (same values)."""
        _, _, _, pencil = setup
        full = pencil.singular_values()
        pencil_only = pencil.singular_values(profiles=("pencil",))
        assert set(pencil_only) == {"pencil"}
        assert np.array_equal(pencil_only["pencil"], full["pencil"])
        two = pencil.singular_values(profiles=("loewner", "pencil"))
        assert set(two) == {"loewner", "pencil"}
        with pytest.raises(ValueError, match="unknown singular-value profiles"):
            pencil.singular_values(profiles=("bogus",))

    def test_augmented_matrices(self, setup):
        _, _, _, pencil = setup
        assert pencil.augmented_row_matrix().shape == (pencil.k_left, 2 * pencil.k_right)
        assert pencil.augmented_column_matrix().shape == (2 * pencil.k_left, pencil.k_right)


class TestRealTransform:
    def test_transform_matrix_is_unitary(self):
        t = real_transform_matrix((2, 2, 1, 1))
        assert t.shape == (6, 6)
        assert np.allclose(t.conj().T @ t, np.eye(6), atol=1e-12)

    def test_transform_matrix_validation(self):
        with pytest.raises(ValueError):
            real_transform_matrix((2, 1))
        with pytest.raises(ValueError):
            real_transform_matrix((2, 2, 1))

    def test_real_transform_produces_real_pencil(self, setup):
        _, _, _, pencil = setup
        real_pencil = to_real_data(pencil)
        assert real_pencil.is_real
        for matrix in (real_pencil.loewner, real_pencil.shifted_loewner,
                       real_pencil.W, real_pencil.V):
            assert not np.iscomplexobj(matrix) or np.max(np.abs(matrix.imag)) == 0

    def test_real_transform_preserves_singular_values(self, setup):
        _, _, _, pencil = setup
        real_pencil = to_real_data(pencil)
        s_complex = np.linalg.svd(pencil.loewner, compute_uv=False)
        s_real = np.linalg.svd(real_pencil.loewner, compute_uv=False)
        assert np.allclose(s_complex, s_real, rtol=1e-9)

    def test_real_transform_idempotent(self, setup):
        _, _, _, pencil = setup
        real_pencil = to_real_data(pencil)
        assert to_real_data(real_pencil) is real_pencil

    def test_real_transform_rejects_non_symmetric_data(self, setup):
        """Without conjugate blocks the transform cannot produce real matrices."""
        system, data, _, _ = setup
        directions = identity_directions(3, 3, 4, offset_stride=False)
        tangential = build_tangential_data(
            data, right_directions=directions, left_directions=directions,
            include_conjugates=False,
        )
        pencil = build_loewner_pencil(tangential)
        with pytest.raises(ValueError):
            to_real_data(pencil)


class TestRealizations:
    def test_svd_realization_recovers_system(self, setup):
        """Lemma 3.4: the projected realization reproduces the transfer function."""
        system, data, _, pencil = setup
        real_pencil = to_real_data(pencil)
        model, diag = svd_realization(real_pencil)
        expected_order = system.order + np.linalg.matrix_rank(system.D)
        assert diag.order == expected_order
        freqs = log_frequencies(1e2, 1e5, 30)
        reference = system.frequency_response(freqs)
        response = model.frequency_response(freqs)
        err = np.linalg.norm(response - reference) / np.linalg.norm(reference)
        assert err < 1e-8
        assert model.is_real

    def test_pencil_mode_realization(self, setup):
        system, _, _, pencil = setup
        model, diag = svd_realization(pencil, mode="pencil")
        assert diag.mode == "pencil"
        assert diag.x0 is not None
        freqs = log_frequencies(1e2, 1e5, 15)
        err = (np.linalg.norm(model.frequency_response(freqs) - system.frequency_response(freqs))
               / np.linalg.norm(system.frequency_response(freqs)))
        assert err < 1e-7

    def test_explicit_order_truncation(self, setup):
        _, _, _, pencil = setup
        model, diag = svd_realization(to_real_data(pencil), order=6)
        assert model.order == 6
        assert diag.rank_tolerance is None

    def test_invalid_order_rejected(self, setup):
        _, _, _, pencil = setup
        with pytest.raises(ValueError):
            svd_realization(pencil, order=10_000)

    def test_invalid_mode_rejected(self, setup):
        _, _, _, pencil = setup
        with pytest.raises(ValueError):
            svd_realization(pencil, mode="bogus")

    def test_direct_realization_exact_when_square_and_regular(self):
        """Lemma 3.1 on critically sampled data: E=-L, A=-sL, B=V, C=W interpolates."""
        system = random_stable_system(order=8, n_ports=2, feedthrough=None, seed=2)
        data = sample_scattering(system, log_frequencies(1e2, 1e4, 4))
        directions = identity_directions(2, 2, 2, offset_stride=False)
        tangential = build_tangential_data(
            data, right_directions=directions, left_directions=directions,
        )
        pencil = build_loewner_pencil(tangential)
        model = direct_realization(pencil)
        assert model.order == pencil.k_right
        right, left = tangential.interpolation_residuals(model)
        assert np.max(right) < 1e-6
        assert np.max(left) < 1e-6
        # with t_i = m = p the full sample matrices are matched (eq. 3)
        for freq, sample in data:
            h = model.transfer_function(1j * 2 * np.pi * freq)
            assert np.allclose(h, sample, atol=1e-6)

    def test_direct_realization_rejects_oversampled_data(self, setup):
        _, _, _, pencil = setup
        with pytest.raises(ValueError, match="singular"):
            direct_realization(pencil)
