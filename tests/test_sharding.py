"""The sharding layer's contract, locked down differentially and by property.

Three layers of defence:

* **hypothesis property tests** of :class:`~repro.batch.sharding.ShardPlan`
  -- every job assigned exactly once for arbitrary ``(n_jobs, n_shards)``,
  assignment stable under permutation of the job list, fingerprints that
  separate different plans;
* **unit tests** of the manifest / shard-result formats -- schema
  validation, tamper detection, bitwise round-trips (failure records
  included) and every merge rejection path (mismatched plan fingerprints,
  duplicate / missing / out-of-plan jobs);
* the **differential test**: ``mixed_batch_jobs`` run unsharded vs. 2-shard
  (full subprocess round-trip through the ``python -m repro.batch.shard``
  CLI) and 3-shard (in-process, mixed executors) must produce merged
  results whose record order, numerical payloads, summary tables and JSON
  exports are *identical* to the single-process run -- including the cache
  hit/miss statuses and counters when the shards share one ``DiskStore``.
"""

from __future__ import annotations

import dataclasses
import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import (
    BatchEngine,
    BatchResult,
    FitJob,
    JobRecord,
    ShardError,
    ShardPlan,
    ShardResult,
    comparable_json,
    job_fingerprint,
    load_manifest,
    merge_shard_results,
    numerical_differences,
    read_shard_result,
    run_shard,
    write_manifests,
    write_shard_result,
)
from repro.batch.shard import cli_subprocess
from repro.batch.sharding import manifest_name, validate_manifest
from repro.cache import FitCache
from repro.core.options import MftiOptions
from repro.data import linear_frequencies, sample_scattering
from repro.experiments.workloads import mixed_batch_jobs, time_domain_jobs
from repro.metrics import TIME_DOMAIN_METRIC_KEYS
from repro.systems.random_systems import random_stable_system

#: Scaled-down mixed grid: fast enough for tier 1, same 8-job structure as
#: the full benchmark grid.
GRID_KWARGS = dict(pdn_samples=36, pdn_validation=48, line_sections=10,
                   line_samples=40, line_validation=50)


@pytest.fixture(scope="module")
def grid_jobs():
    return mixed_batch_jobs(**GRID_KWARGS)


@pytest.fixture(scope="module")
def reference_run(grid_jobs):
    """The unsharded (single-process, uncached) run every variant must match."""
    result = BatchEngine().run(grid_jobs)
    assert result.n_failed == 0, result.failures
    return result


def normalized(result: BatchResult) -> BatchResult:
    """Zero the volatile execution envelope so two runs compare exactly."""
    return BatchResult(
        records=tuple(
            dataclasses.replace(record, elapsed_seconds=0.0)
            for record in result.records
        ),
        executor="", n_workers=0, chunk_size=0, wall_seconds=0.0,
    )


def assert_identical(reference: BatchResult, merged: BatchResult) -> None:
    """The full acceptance contract: records, payloads, table and JSON."""
    assert not numerical_differences(reference, merged)
    assert [r.cache_status for r in reference.records] == \
           [r.cache_status for r in merged.records]
    assert (reference.n_cache_hits, reference.n_cache_misses) == \
           (merged.n_cache_hits, merged.n_cache_misses)
    assert comparable_json(reference) == comparable_json(merged)
    assert normalized(reference).summary_table(title="run") == \
           normalized(merged).summary_table(title="run")


# --------------------------------------------------------------------------- #
# ShardPlan properties
# --------------------------------------------------------------------------- #
job_ids = st.lists(st.text(alphabet="0123456789abcdef", min_size=8, max_size=8),
                   min_size=0, max_size=40)


class TestShardPlanProperties:
    @given(ids=job_ids, n_shards=st.integers(min_value=1, max_value=9))
    @settings(max_examples=200, deadline=None)
    def test_every_job_assigned_exactly_once(self, ids, n_shards):
        plan = ShardPlan.from_job_ids(ids, n_shards)
        assert plan.n_jobs == len(ids)
        assert len(plan.assignments) == len(ids)
        assert all(0 <= shard < n_shards for shard in plan.assignments)
        covered = [index for shard in range(n_shards)
                   for index in plan.indices_for(shard)]
        assert sorted(covered) == list(range(len(ids)))

    @given(ids=st.lists(st.text(alphabet="0123456789abcdef", min_size=8, max_size=8),
                        min_size=1, max_size=30, unique=True),
           n_shards=st.integers(min_value=1, max_value=9),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=200, deadline=None)
    def test_assignment_stable_under_permutation(self, ids, n_shards, seed):
        import random

        permuted = list(ids)
        random.Random(seed).shuffle(permuted)
        original = ShardPlan.from_job_ids(ids, n_shards)
        shuffled = ShardPlan.from_job_ids(permuted, n_shards)
        for job_id in ids:
            assert original.shard_of(job_id) == shuffled.shard_of(job_id)

    @given(ids=st.lists(st.text(alphabet="0123456789abcdef", min_size=8, max_size=8),
                        min_size=2, max_size=20, unique=True),
           n_shards=st.integers(min_value=1, max_value=5))
    @settings(max_examples=100, deadline=None)
    def test_fingerprint_pins_order_and_shard_count(self, ids, n_shards):
        plan = ShardPlan.from_job_ids(ids, n_shards)
        reversed_plan = ShardPlan.from_job_ids(list(reversed(ids)), n_shards)
        assert plan.fingerprint != reversed_plan.fingerprint
        more_shards = ShardPlan.from_job_ids(ids, n_shards + 1)
        assert plan.fingerprint != more_shards.fingerprint
        rebuilt = ShardPlan.from_job_ids(ids, n_shards)
        assert plan == rebuilt

    def test_rejects_invalid_shard_counts(self):
        with pytest.raises(ShardError):
            ShardPlan.from_job_ids(["aa"], 0)
        plan = ShardPlan.from_job_ids(["aa", "bb"], 2)
        with pytest.raises(ShardError):
            plan.indices_for(2)
        with pytest.raises(ShardError):
            plan.shard_of("not-a-job")

    def test_plan_from_jobs_matches_job_fingerprints(self, grid_jobs):
        plan = ShardPlan.from_jobs(grid_jobs, 3)
        assert plan.job_ids == tuple(job_fingerprint(job) for job in grid_jobs)
        # identical rebuilt grids produce the identical plan (shardability)
        again = ShardPlan.from_jobs(mixed_batch_jobs(**GRID_KWARGS), 3)
        assert plan == again


# --------------------------------------------------------------------------- #
# merge validation (lightweight fabricated shard results)
# --------------------------------------------------------------------------- #
def fake_record(index: int) -> JobRecord:
    return JobRecord(index=index, label=f"job{index}", method="mfti",
                     tags={}, status="failed", error_type="RuntimeError",
                     error_message="fabricated", error_traceback="")


def fake_shard(indices, *, shard_index=0, n_shards=2, n_total=4,
               fingerprint="plan-a") -> ShardResult:
    return ShardResult(
        plan_fingerprint=fingerprint,
        shard_index=shard_index,
        n_shards=n_shards,
        n_jobs_total=n_total,
        result=BatchResult(records=tuple(fake_record(i) for i in indices)),
    )


class TestMergeValidation:
    def test_merges_disjoint_shards_in_any_order(self):
        merged = merge_shard_results([
            fake_shard([2, 3], shard_index=1),
            fake_shard([0, 1], shard_index=0),
        ])
        assert [record.index for record in merged.records] == [0, 1, 2, 3]
        assert merged.executor == "sharded(2)"

    def test_rejects_empty_input(self):
        with pytest.raises(ShardError, match="no shard results"):
            merge_shard_results([])

    def test_rejects_mismatched_plan_fingerprints(self):
        with pytest.raises(ShardError, match="different plans"):
            merge_shard_results([
                fake_shard([0, 1], shard_index=0, fingerprint="plan-a"),
                fake_shard([2, 3], shard_index=1, fingerprint="plan-b"),
            ])

    def test_rejects_mismatched_plan_shape(self):
        with pytest.raises(ShardError, match="plan shape"):
            merge_shard_results([
                fake_shard([0, 1], shard_index=0, n_total=4),
                fake_shard([2, 3], shard_index=1, n_total=5),
            ])

    def test_rejects_duplicate_shard_index(self):
        with pytest.raises(ShardError, match="appears twice"):
            merge_shard_results([
                fake_shard([0, 1], shard_index=0),
                fake_shard([2, 3], shard_index=0),
            ])

    def test_rejects_duplicate_job_index(self):
        with pytest.raises(ShardError, match="two shards"):
            merge_shard_results([
                fake_shard([0, 1], shard_index=0),
                fake_shard([1, 2, 3], shard_index=1),
            ])

    def test_rejects_missing_jobs(self):
        with pytest.raises(ShardError, match="missing job indices \\[3\\]"):
            merge_shard_results([
                fake_shard([0, 1], shard_index=0),
                fake_shard([2], shard_index=1),
            ])

    def test_rejects_out_of_plan_indices(self):
        with pytest.raises(ShardError, match="out-of-plan"):
            merge_shard_results([
                fake_shard([0, 1], shard_index=0),
                fake_shard([2, 3, 7], shard_index=1),
            ])


# --------------------------------------------------------------------------- #
# manifests and shard result files
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def tiny_jobs():
    """Three cheap jobs over one tiny dataset, poison job included."""
    system = random_stable_system(order=8, n_ports=2, feedthrough=0.1, seed=7)
    data = sample_scattering(system, linear_frequencies(1e2, 1e4, 10), label="tiny")
    reference = sample_scattering(system, linear_frequencies(1e2, 1e4, 20),
                                  label="tiny validation")
    return [
        FitJob(data, method="mfti", options=MftiOptions(block_size=2),
               label="ok-mfti", tags={"kind": "good"}, reference=reference),
        FitJob(data, method="vfti", label="ok-vfti", tags={"kind": "good"}),
        FitJob(data, method="mfti", options=MftiOptions(order=50),
               label="poison", tags={"kind": "poison"}),
    ]


class TestManifests:
    def test_round_trip_and_names(self, tiny_jobs, tmp_path):
        plan = ShardPlan.from_jobs(tiny_jobs, 2)
        paths = write_manifests(plan, tiny_jobs, tmp_path,
                                workload="demo", workload_kwargs={"n": 1},
                                cache_dir="/shared/cache")
        assert [os.path.basename(p) for p in paths] == \
               [manifest_name(0, 2), manifest_name(1, 2)]
        manifests = [load_manifest(path) for path in paths]
        indices = sorted(spec["index"] for m in manifests for spec in m["jobs"])
        assert indices == [0, 1, 2]
        for manifest in manifests:
            assert manifest["plan_fingerprint"] == plan.fingerprint
            assert manifest["workload"] == {"name": "demo", "kwargs": {"n": 1}}
            assert manifest["cache_dir"] == "/shared/cache"
            for spec in manifest["jobs"]:
                assert spec["job_id"] == plan.job_ids[spec["index"]]
                assert spec["options"]["items"], "canonical options missing"

    def test_write_rejects_drifted_job_list(self, tiny_jobs, tmp_path):
        plan = ShardPlan.from_jobs(tiny_jobs, 2)
        drifted = list(tiny_jobs)
        drifted[0] = dataclasses.replace(tiny_jobs[0], tags={"kind": "edited"})
        with pytest.raises(ShardError, match="does not match the plan"):
            write_manifests(plan, drifted, tmp_path)

    @pytest.mark.parametrize("mutate, match", [
        (lambda m: m.update(format="other"), "format marker"),
        (lambda m: m.update(schema_version=99), "schema 99"),
        (lambda m: m.pop("plan_fingerprint"), "missing required key"),
        (lambda m: m.update(shard_index=5), "out of range"),
        (lambda m: m["jobs"].append(dict(m["jobs"][0])), "twice"),
        (lambda m: m["jobs"][0].update(index=99), "out of range"),
        (lambda m: m["jobs"][0].pop("job_id"), "missing required key"),
    ])
    def test_validate_manifest_rejections(self, tiny_jobs, tmp_path, mutate, match):
        plan = ShardPlan.from_jobs(tiny_jobs, 1)
        path = write_manifests(plan, tiny_jobs, tmp_path)[0]
        manifest = load_manifest(path)
        mutate(manifest)
        with pytest.raises(ShardError, match=match):
            validate_manifest(manifest)

    def test_run_shard_rejects_tampered_job_id(self, tiny_jobs, tmp_path):
        plan = ShardPlan.from_jobs(tiny_jobs, 1)
        manifest = load_manifest(write_manifests(plan, tiny_jobs, tmp_path)[0])
        manifest["jobs"][0]["job_id"] = "0" * 64
        with pytest.raises(ShardError, match="drifted"):
            run_shard(manifest, tiny_jobs)

    def test_run_shard_rejects_wrong_batch_size(self, tiny_jobs, tmp_path):
        plan = ShardPlan.from_jobs(tiny_jobs, 1)
        manifest = load_manifest(write_manifests(plan, tiny_jobs, tmp_path)[0])
        with pytest.raises(ShardError, match="rebuilt batch has 2"):
            run_shard(manifest, tiny_jobs[:2])


class TestShardResultFiles:
    def test_bitwise_round_trip_including_failure_records(self, tiny_jobs, tmp_path):
        plan = ShardPlan.from_jobs(tiny_jobs, 1)
        manifest = load_manifest(write_manifests(plan, tiny_jobs, tmp_path)[0])
        result = run_shard(manifest, tiny_jobs)
        assert result.n_failed == 1  # the poison job travels as a record
        path = write_shard_result(tmp_path / "shard.npz", manifest, result)
        loaded = read_shard_result(path)
        assert loaded.plan_fingerprint == plan.fingerprint
        assert not numerical_differences(result, loaded.result)
        for original, restored in zip(result.records, loaded.result.records):
            assert original.elapsed_seconds == restored.elapsed_seconds
            assert original.error_type == restored.error_type
            assert original.error_message == restored.error_message
            assert original.cache_status == restored.cache_status

    def test_write_rejects_wrong_record_set(self, tiny_jobs, tmp_path):
        plan = ShardPlan.from_jobs(tiny_jobs, 2)
        paths = write_manifests(plan, tiny_jobs, tmp_path)
        manifest0 = load_manifest(paths[0])
        manifest1 = load_manifest(paths[1])
        result0 = run_shard(manifest0, tiny_jobs)
        with pytest.raises(ShardError, match="manifest plans"):
            write_shard_result(tmp_path / "wrong.npz", manifest1, result0)

    def test_read_rejects_garbage_and_foreign_files(self, tmp_path):
        garbage = tmp_path / "garbage.npz"
        garbage.write_bytes(b"not an npz archive")
        with pytest.raises(ShardError, match="cannot read"):
            read_shard_result(garbage)
        import numpy as np

        foreign = tmp_path / "foreign.npz"
        np.savez(foreign, data=np.arange(3))
        with pytest.raises(ShardError, match="metadata blob"):
            read_shard_result(foreign)

    def test_read_rejects_tampered_array_names(self, tmp_path):
        """A non-numeric record suffix is a ShardError, not a raw ValueError."""
        import numpy as np

        from repro.batch.sharding import SHARD_RESULT_FORMAT, SHARD_SCHEMA_VERSION
        from repro.cache import PAYLOAD_SCHEMA_VERSION

        meta = {"format": SHARD_RESULT_FORMAT,
                "schema_version": SHARD_SCHEMA_VERSION,
                "payload_schema_version": PAYLOAD_SCHEMA_VERSION,
                "plan_fingerprint": "x", "shard_index": 0, "n_shards": 1,
                "n_jobs_total": 0, "executor": "serial", "n_workers": 1,
                "chunk_size": 1, "wall_seconds": 0.0, "records": []}
        tampered = tmp_path / "tampered.npz"
        np.savez(tampered,
                 __shard_meta__=np.frombuffer(json.dumps(meta).encode(),
                                              dtype=np.uint8),
                 recordX__a=np.arange(2))
        with pytest.raises(ShardError, match="unexpected array"):
            read_shard_result(tampered)

    def test_load_manifest_missing_path_is_shard_error(self, tmp_path):
        with pytest.raises(ShardError, match="cannot read manifest"):
            load_manifest(tmp_path / "does-not-exist.manifest.json")


# --------------------------------------------------------------------------- #
# the differential acceptance test
# --------------------------------------------------------------------------- #
#: One shared subprocess harness (also used by the CI sharded smoke).
run_cli = cli_subprocess


class TestShardedRunsMatchUnsharded:
    def test_two_shards_via_cli_subprocesses(self, reference_run, grid_jobs,
                                             tmp_path):
        """Cold + warm 2-shard CLI round trip vs. the cached unsharded run."""
        shard_dir = tmp_path / "shards"
        shared_store = tmp_path / "store-sharded"
        plan = run_cli(
            "plan", "--workload", "mixed_batch_jobs",
            "--workload-args", json.dumps(GRID_KWARGS),
            "--shards", "2", "--out-dir", str(shard_dir),
            "--cache-dir", str(shared_store),
        )
        assert plan.returncode == 0, plan.stderr
        manifests = sorted(shard_dir.glob("*.manifest.json"))
        assert len(manifests) == 2

        # the cached unsharded reference: cold run populates, warm run replays
        cache = FitCache.on_disk(tmp_path / "store-unsharded")
        cold_reference = BatchEngine(cache=cache).run(grid_jobs)
        assert cold_reference.n_cache_misses == cold_reference.n_jobs
        warm_reference = BatchEngine(cache=cache).run(grid_jobs)
        assert warm_reference.n_cache_hits == warm_reference.n_jobs

        for expectation, reference in (("cold", cold_reference),
                                       ("warm", warm_reference)):
            shard_files = []
            for manifest in manifests:
                run = run_cli("run", str(manifest))
                assert run.returncode == 0, run.stderr
                shard_files.append(
                    str(manifest).replace(".manifest.json", ".result.npz"))
            merged = merge_shard_results(shard_files)
            # both shards share one DiskStore: the cold sweep misses every
            # job, the warm sweep replays every job -- exactly like the
            # unsharded cached run, counters and statuses included
            assert_identical(reference, merged)
            if expectation == "cold":
                assert merged.n_cache_misses == merged.n_jobs
            else:
                assert merged.n_cache_hits == merged.n_jobs

        # the uncached unsharded run agrees numerically too (cache fields
        # aside): cached and uncached paths compute identical payloads
        assert not numerical_differences(reference_run, cold_reference)

    def test_three_shards_in_process_mixed_executors(self, reference_run,
                                                     grid_jobs, tmp_path):
        """3-shard in-process merge, one shard on the process executor."""
        plan = ShardPlan.from_jobs(grid_jobs, 3)
        paths = write_manifests(plan, grid_jobs, tmp_path,
                                workload="mixed_batch_jobs",
                                workload_kwargs=GRID_KWARGS)
        engines = [
            BatchEngine(),
            BatchEngine(executor="process", max_workers=2, chunk_size=1),
            BatchEngine(executor="thread", max_workers=2),
        ]
        shard_files = []
        for path, engine in zip(paths, engines):
            manifest = load_manifest(path)
            result = run_shard(manifest, grid_jobs, engine=engine)
            shard_files.append(write_shard_result(
                path.replace(".manifest.json", ".result.npz"), manifest, result))
        merged = merge_shard_results(shard_files)
        assert_identical(reference_run, merged)
        assert merged.executor == "sharded(3)"

    def test_merge_cli_exports_identical_json(self, reference_run, grid_jobs,
                                              tmp_path):
        """The merge subcommand writes the same comparable JSON export."""
        plan = ShardPlan.from_jobs(grid_jobs, 2)
        paths = write_manifests(plan, grid_jobs, tmp_path,
                                workload="mixed_batch_jobs",
                                workload_kwargs=GRID_KWARGS)
        shard_files = []
        for path in paths:
            manifest = load_manifest(path)
            result = run_shard(manifest, grid_jobs)
            shard_files.append(write_shard_result(
                path.replace(".manifest.json", ".result.npz"), manifest, result))
        out = tmp_path / "merged.json"
        merge = run_cli("merge", *shard_files, "--out", str(out))
        assert merge.returncode == 0, merge.stderr
        exported = json.loads(out.read_text())
        assert exported["n_jobs"] == reference_run.n_jobs
        assert exported["n_failed"] == 0
        reference_jobs = json.loads(comparable_json(reference_run))["jobs"]
        exported_jobs = exported["jobs"]
        for job in exported_jobs:
            # the volatile envelope comparable_dict normalises: timing, plus
            # the response-cache tally (each shard shares its own cache, so
            # the hit/miss split differs from the unsharded reference)
            job["elapsed_seconds"] = 0.0
            job["responses"] = {"hits": 0, "misses": 0}
        assert exported_jobs == reference_jobs

    def test_cli_surfaces_validation_errors(self, tmp_path):
        bad = run_cli("plan", "--workload", "no-such-grid",
                      "--shards", "2", "--out-dir", str(tmp_path))
        assert bad.returncode == 2
        assert "unknown workload" in bad.stderr
        missing = run_cli("run", str(tmp_path / "no-such.manifest.json"))
        assert missing.returncode == 2
        assert "cannot read manifest" in missing.stderr


class TestTimeDomainJobsThroughShards:
    """``time_domain_jobs`` end-to-end: BatchEngine + shard merge must carry
    the per-record ``time_domain`` metric dicts bitwise-reproducibly."""

    #: Scaled-down time-domain grid: one order, both fit methods.
    TD_KWARGS = dict(system_orders=(12,), methods=("vfti", "mfti"),
                     n_samples=40, n_validation=60, time_points=64,
                     oversample=4)

    @pytest.fixture(scope="class")
    def td_jobs(self):
        return time_domain_jobs(**self.TD_KWARGS)

    @pytest.fixture(scope="class")
    def td_reference(self, td_jobs):
        result = BatchEngine().run(td_jobs)
        assert result.n_failed == 0, result.failures
        return result

    def test_records_carry_time_domain_metrics(self, td_reference):
        for record in td_reference.records:
            assert set(record.time_domain) == set(TIME_DOMAIN_METRIC_KEYS)
            assert all(np.isfinite(v) for v in record.time_domain.values())
        table = normalized(td_reference).summary_table(title="td")
        assert "impulse L2" in table and "ringing" in table

    def test_two_shard_merge_is_bitwise_identical(self, td_reference, td_jobs,
                                                  tmp_path):
        plan = ShardPlan.from_jobs(td_jobs, 2)
        paths = write_manifests(plan, td_jobs, tmp_path,
                                workload="time_domain_jobs",
                                workload_kwargs=self.TD_KWARGS)
        shard_files = []
        for path in paths:
            manifest = load_manifest(path)
            result = run_shard(manifest, td_jobs)
            shard_files.append(write_shard_result(
                path.replace(".manifest.json", ".result.npz"), manifest, result))
        merged = merge_shard_results(shard_files)
        assert_identical(td_reference, merged)
        # the npz round trip preserved the metric dicts exactly (hex floats)
        for ref, got in zip(td_reference.records, merged.records):
            assert ref.time_domain == got.time_domain

    def test_time_domain_spec_separates_fingerprints(self, td_jobs):
        """A job with a spec must never share a fingerprint with the same
        job without one -- the cache would otherwise serve stale records."""
        with_spec = td_jobs[0]
        without_spec = dataclasses.replace(with_spec, time_domain=None)
        assert job_fingerprint(with_spec) != job_fingerprint(without_spec)
