"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file only exists so
that editable installs keep working on environments whose setuptools/pip are
too old for PEP-660 editable wheels (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
